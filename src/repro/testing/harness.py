"""Fuzz-episode runner: N seeded episodes against an invariant suite.

One *episode* is: generate a fuzzed multi-system stream from an episode
seed, then run every checker in the chosen suite against it.  Episode
seeds derive deterministically from the base seed
(``seed + 7919 * index``) and are printed in every report, so any
failing episode replays exactly with ``repro fuzz --episodes 1 --seed
<episode seed>``.

The rendered report is a pure function of ``(config, seed)`` — no
timestamps, no temp paths — so two runs with the same arguments produce
byte-identical output (smoke.sh diffs them).

:func:`measure_fault_point_overhead` is the harness's own benchmark: it
times the unarmed :func:`~repro.testing.faultpoints.fault_point` hook
against an identical no-op function, guarding the "zero overhead when
unarmed" contract in CI.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..obs import get_registry
from .faultpoints import fault_point
from .fuzzer import LogStreamFuzzer
from .invariants import (BREAKABLE_RECOVERIES, CheckContext, InvariantResult,
                         suite_checkers)

__all__ = [
    "EPISODE_SEED_STRIDE", "episode_seed", "default_fuzzer",
    "EpisodeResult", "Violation", "FuzzReport", "run_episodes",
    "OverheadReport", "measure_fault_point_overhead",
]

# Prime stride keeps episode seeds distinct and non-overlapping for any
# plausible base seed / episode count.
EPISODE_SEED_STRIDE = 7919


def episode_seed(base_seed: int, index: int) -> int:
    """The seed of episode ``index`` under base seed ``base_seed``."""
    return base_seed + EPISODE_SEED_STRIDE * index


def default_fuzzer() -> LogStreamFuzzer:
    """The fuzzer configuration ``repro fuzz`` episodes run against."""
    return LogStreamFuzzer(
        systems=("bgl", "spirit", "thunderbird"),
        lines_per_system=120,
        anomaly_bursts=3,
        burst_length=(3, 6),
        parameter_noise=0.1,
    )


@dataclass(frozen=True)
class Violation:
    """One failed invariant in one episode."""

    episode: int
    seed: int
    invariant: str
    details: str


@dataclass
class EpisodeResult:
    """All invariant outcomes for one episode."""

    episode: int
    seed: int
    results: list[InvariantResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)


@dataclass
class FuzzReport:
    """The full outcome of a ``run_episodes`` call."""

    suite: str
    seed: int
    broken: tuple[str, ...]
    episodes: list[EpisodeResult] = field(default_factory=list)

    @property
    def violations(self) -> list[Violation]:
        return [
            Violation(episode.episode, episode.seed, result.invariant,
                      result.details)
            for episode in self.episodes
            for result in episode.results if not result.ok
        ]

    @property
    def ok(self) -> bool:
        return all(episode.ok for episode in self.episodes)

    def render(self) -> str:
        """Deterministic human-readable report (byte-stable across runs)."""
        lines = [
            f"fuzz suite '{self.suite}': {len(self.episodes)} episode(s), "
            f"base seed {self.seed}"
        ]
        if self.broken:
            lines.append(f"broken recovery paths: {', '.join(self.broken)}")
        seeds = ", ".join(str(episode.seed) for episode in self.episodes)
        lines.append(f"episode seeds: {seeds}")
        lines.append("replay one with: repro fuzz --episodes 1 --seed <episode seed>")
        for episode in self.episodes:
            passed = sum(1 for result in episode.results if result.ok)
            lines.append(f"episode {episode.episode} (seed {episode.seed}): "
                         f"{passed}/{len(episode.results)} invariants ok")
            for result in episode.results:
                marker = "ok  " if result.ok else "FAIL"
                lines.append(f"  {marker} {result.invariant}: {result.details}")
        violations = self.violations
        lines.append(f"violations: {len(violations)}")
        for violation in violations:
            lines.append(f"  episode {violation.episode} (seed {violation.seed}) "
                         f"{violation.invariant}: {violation.details}")
        return "\n".join(lines) + "\n"


def run_episodes(episodes: int, seed: int, *, suite: str = "all",
                 broken: tuple[str, ...] = (),
                 fuzzer: LogStreamFuzzer | None = None,
                 window: int = 10, step: int = 5,
                 f1_floor: float = 0.7,
                 provider_spec: str | None = None,
                 executor: str = "sync") -> FuzzReport:
    """Run ``episodes`` seeded fuzz episodes against ``suite``.

    ``broken`` names recovery paths to disable (see
    :data:`~repro.testing.invariants.BREAKABLE_RECOVERIES`) — the
    self-test mode proving the harness detects the defects it exists
    for.  Each episode gets a private scratch directory (cache files
    etc.) that never appears in the rendered report.  ``executor``
    selects the runtime the replay invariants drive (``"sync"`` or
    ``"process"``); injector-armed checkers pin sync regardless.
    """
    if executor not in ("sync", "process"):
        raise ValueError(f"unknown executor {executor!r}; "
                         "expected sync|process")
    if episodes <= 0:
        raise ValueError(f"episodes must be positive, got {episodes}")
    unknown = [name for name in broken if name not in BREAKABLE_RECOVERIES]
    if unknown:
        raise ValueError(
            f"unknown recovery path(s) {', '.join(sorted(unknown))}; "
            f"breakable: {', '.join(BREAKABLE_RECOVERIES)}")
    checkers = suite_checkers(suite)
    fuzzer = fuzzer if fuzzer is not None else default_fuzzer()
    report = FuzzReport(suite=suite, seed=seed, broken=tuple(broken))
    # Episode/invariant totals go to the ambient registry (checkers use
    # private registries internally so their counter assertions stay
    # exact; this is the surface ``repro fuzz --metrics-out`` exports).
    registry = get_registry()
    episode_counter = registry.counter("testing.fuzz.episodes")
    checked_counter = registry.counter("testing.fuzz.invariants_checked")
    violation_counter = registry.counter("testing.fuzz.violations")
    for index in range(episodes):
        current = episode_seed(seed, index)
        stream = fuzzer.generate(current)
        outcome = EpisodeResult(episode=index, seed=current)
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as scratch:
            context = CheckContext(
                stream=stream, seed=current, workdir=Path(scratch),
                broken=frozenset(broken), window=window, step=step,
                f1_floor=f1_floor, provider_spec=provider_spec,
                executor=executor,
            )
            for name, checker in checkers:
                try:
                    result = checker(context)
                except Exception as exc:  # lint: disable=blanket-except
                    # A checker crash IS a violation (an unhandled injected
                    # fault means the recovery path under test is missing);
                    # it must land in the report, not kill the run.
                    result = InvariantResult(
                        name, False, f"checker crashed: {type(exc).__name__}: {exc}")
                outcome.results.append(result)
                checked_counter.inc()
                if not result.ok:
                    violation_counter.inc()
        episode_counter.inc()
        report.episodes.append(outcome)
    return report


# -- unarmed-hook overhead benchmark ---------------------------------------

def _noop_hook(name: str, value=None):
    """Shape-identical baseline for the overhead benchmark."""
    return value


@dataclass(frozen=True)
class OverheadReport:
    """Unarmed fault-point cost vs. an identical no-op function."""

    iterations: int
    hook_ns: float       # per-call cost of the unarmed fault_point
    baseline_ns: float   # per-call cost of the no-op baseline

    @property
    def overhead_ns(self) -> float:
        """Extra cost of the hook beyond a plain function call."""
        return self.hook_ns - self.baseline_ns

    def render(self) -> str:
        return (f"unarmed fault_point: {self.hook_ns:.1f} ns/call "
                f"(baseline {self.baseline_ns:.1f} ns/call, "
                f"overhead {self.overhead_ns:+.1f} ns/call, "
                f"{self.iterations} iterations)")


def measure_fault_point_overhead(iterations: int = 200_000, repeats: int = 5,
                                 *, clock: Callable[[], float] = time.perf_counter,
                                 ) -> OverheadReport:
    """Best-of-``repeats`` per-call cost of the *unarmed* hook.

    Takes the minimum over repeats (standard micro-benchmark practice:
    the minimum is the least noise-contaminated estimate), so a loaded
    CI box inflates both sides equally rather than failing the guard.
    """
    if iterations <= 0 or repeats <= 0:
        raise ValueError("iterations and repeats must be positive")

    def best(fn) -> float:
        best_seconds = float("inf")
        for _ in range(repeats):
            start = clock()
            for _ in range(iterations):
                fn("runtime.worker.score", None)
            elapsed = clock() - start
            if elapsed < best_seconds:
                best_seconds = elapsed
        return best_seconds * 1e9 / iterations

    # Interleave a warmup of each before timing either.
    _noop_hook("runtime.worker.score", None)
    fault_point("runtime.worker.score", None)
    return OverheadReport(
        iterations=iterations,
        hook_ns=best(fault_point),
        baseline_ns=best(_noop_hook),
    )
