"""Deterministic fault-injection and fuzzing harness.

The correctness substrate for the ROADMAP's production-scale north
star: seeded log-stream fuzzing with planted ground truth
(:mod:`~repro.testing.fuzzer`), scheduled fault injection through named
hooks in the runtime/LLM/trainer (:mod:`~repro.testing.faultpoints`,
:mod:`~repro.testing.plan`), metamorphic/differential invariants over
fuzz episodes (:mod:`~repro.testing.invariants`), and the episode
runner behind ``repro fuzz`` (:mod:`~repro.testing.harness`).

Attribute access is lazy (PEP 562): production modules import
``repro.testing.faultpoints`` (stdlib-only) for their hooks, and that
import must not drag in the invariant library — which itself imports the
runtime/LLM/trainer modules hosting the hooks.  Eager re-exports here
would close that cycle.
"""

from .faultpoints import (DROPPED, FAULT_POINTS, active_injector,
                          allowed_module, fault_point, register_fault_point)

_LAZY = {
    # plan
    "FAULT_KINDS": "plan", "InjectedFault": "plan", "FaultSpec": "plan",
    "FaultPlan": "plan", "FaultInjector": "plan",
    # fuzzer
    "PlantedAnomaly": "fuzzer", "FuzzedStream": "fuzzer",
    "LogStreamFuzzer": "fuzzer",
    # invariants
    "BREAKABLE_RECOVERIES": "invariants", "DAY0_F1_FLOOR": "invariants",
    "CheckContext": "invariants",
    "InvariantResult": "invariants", "CHECKERS": "invariants",
    "SUITES": "invariants", "suite_checkers": "invariants",
    "ConceptMatcher": "invariants",
    # harness
    "EPISODE_SEED_STRIDE": "harness", "episode_seed": "harness",
    "default_fuzzer": "harness", "EpisodeResult": "harness",
    "Violation": "harness", "FuzzReport": "harness",
    "run_episodes": "harness", "OverheadReport": "harness",
    "measure_fault_point_overhead": "harness",
}

__all__ = [
    "DROPPED", "FAULT_POINTS", "fault_point", "active_injector",
    "register_fault_point", "allowed_module", *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
