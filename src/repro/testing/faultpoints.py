"""Named fault points: the hooks the fault injector fires through.

A *fault point* is a named call site planted in production code
(``fault_point("runtime.worker.score")``).  With no injector armed the
hook is one module-global load and a ``None`` check — the same
activation pattern as :mod:`repro.nn.profiler` — so instrumented hot
paths cost nothing in production.  While a
:class:`~repro.testing.plan.FaultInjector` is armed (``with
FaultInjector(plan): ...``) each call consults the injector, which may
raise, skew the injected clock, corrupt the value passing through, or
return the :data:`DROPPED` sentinel.

The module keeps a **registry** of every legal fault point and the one
module allowed to host it.  The ``fault-point-outside-allowlist`` lint
rule reads this registry, so a hook cannot quietly appear in unreviewed
code: planting a new one means registering it here (or via
:func:`register_fault_point`) where the diff is visible.

This module is deliberately dependency-free (stdlib only): fault points
are planted in low-level modules (queues, cache, trainer) that must not
acquire import cycles through the testing package.
"""

from __future__ import annotations

__all__ = [
    "DROPPED", "FAULT_POINTS", "fault_point", "active_injector",
    "register_fault_point", "allowed_module",
]


class _Dropped:
    """Sentinel returned by a ``drop`` fault: the host must discard the
    value as if it were never produced."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DROPPED>"


DROPPED = _Dropped()

# Fault point name -> posix path fragment of the one module allowed to
# host it.  The lint rule enforces this statically; FaultPlan validates
# spec names against it at construction.
FAULT_POINTS: dict[str, str] = {
    # Inference workers: entry (raise/timeout) and result (corrupt).
    "runtime.worker.score": "repro/runtime/worker.py",
    "runtime.worker.result": "repro/runtime/worker.py",
    # Supervisor attempt boundary: raise before the worker runs, or skew
    # the injected clock so the attempt overruns its timeout budget.
    "runtime.supervisor.attempt": "repro/runtime/supervisor.py",
    # Queue admission: a drop here is silent ingress data loss.
    "runtime.queues.admit": "repro/runtime/queues.py",
    # Process executor: fail a worker-process launch (raise), or flip the
    # per-submit death probe (corrupt True) to SIGKILL a live shard.
    "runtime.proc.spawn": "repro/runtime/procexec.py",
    "runtime.proc.death": "repro/runtime/procexec.py",
    # Cache disk I/O: corrupt the raw bytes read from the cache file.
    "llm.cache.load": "repro/llm/cache.py",
    # LLM completions: hallucination bursts corrupt the returned text.
    "llm.simulated.complete": "repro/llm/simulated.py",
    # Provider boundary: attack the middleware stack (cache, coalescing,
    # breaker, retries) with corrupted upstream completions.
    "llm.provider.complete": "repro/llm/providers.py",
    # Training step: corrupt the assembled loss (NaN/Inf injection).
    "core.trainer.loss": "repro/core/trainer.py",
    # Checkpoint payload between digest and write: raise = crash with
    # nothing durable, corrupt = torn bytes the load digest must catch.
    "trainer.checkpoint.write": "repro/core/checkpoint.py",
}

# The currently armed injector (None = hooks disabled).
_ACTIVE = None


def active_injector():
    """The armed :class:`FaultInjector`, or ``None``."""
    return _ACTIVE


def fault_point(name: str, value=None):
    """A named fault-injection hook.

    Returns ``value`` untouched when no injector is armed (the hot-path
    case: one global load, one comparison).  Under an armed injector the
    due fault — if any — is applied: ``raise`` kinds raise
    :class:`~repro.testing.plan.InjectedFault`, ``timeout`` kinds skew
    the injector clock and pass ``value`` through, ``corrupt`` kinds
    return a mutated value, and ``drop`` kinds return :data:`DROPPED`.
    """
    injector = _ACTIVE
    if injector is None:
        return value
    return injector.fire(name, value)


def register_fault_point(name: str, module_fragment: str) -> None:
    """Register an additional fault point (extension path for tests).

    ``module_fragment`` is the posix-style path fragment of the hosting
    module (e.g. ``"repro/deploy/collector.py"``); the lint allowlist
    picks it up immediately.
    """
    if not name or not module_fragment:
        raise ValueError("fault point name and module fragment must be non-empty")
    existing = FAULT_POINTS.get(name)
    if existing is not None and existing != module_fragment:
        raise ValueError(
            f"fault point {name!r} already registered for {existing!r}"
        )
    FAULT_POINTS[name] = module_fragment


def allowed_module(name: str) -> str:
    """The module fragment allowed to host ``name`` (KeyError if unknown)."""
    return FAULT_POINTS[name]


def _arm(injector):
    """Install ``injector`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    return previous


def _restore(previous) -> None:
    global _ACTIVE
    _ACTIVE = previous
