"""Seeded multi-system log-stream fuzzing with planted ground truth.

:class:`LogStreamFuzzer` generates the adversarial input side of the
harness: an interleaved stream of log records across several (logical)
systems, each speaking a configurable template *dialect* from the event
catalog, with **planted anomaly windows** — contiguous bursts of one
anomalous concept at fuzzer-chosen offsets — and optional **parameter
noise** that perturbs rendered messages the way real deployments drift
from their own templates (renamed hosts, re-cased tokens, extra fields).

Unlike :class:`repro.logs.generator.LogGenerator` (whose anomalies arrive
by rate), the fuzzer *returns its ground truth*: every record carries its
label and every planted burst is reported as a
:class:`PlantedAnomaly`, so invariant checkers can score any detector's
output (the label-recovery F1 floor) and can compute exactly which
windows a correct pipeline must flag.

Everything is a pure function of ``(config, seed)``: episode seeds print
in failure reports and one ``repro fuzz --episodes 1 --seed S`` replays
the exact stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from ..logs.drift import _reword_message
from ..logs.events import EventKind, concepts_for_system
from ..logs.generator import VOLUME_STORM_CONCEPT, LogRecord
from ..logs.parameters import ParameterSampler
from ..logs.scenarios import ScenarioProfile, get_scenario
from ..logs.systems import get_profile

__all__ = ["PlantedAnomaly", "FuzzedStream", "LogStreamFuzzer"]

# Filler tokens parameter noise may splice into a message (log lines in
# production sprout qualifiers the original template never had).
_NOISE_TOKENS = ("retrying", "verbose", "trace", "ack", "pid=7", "eom")


@dataclass(frozen=True)
class PlantedAnomaly:
    """Ground truth for one planted anomalous burst.

    ``start`` indexes the *system's own* line sequence (0-based), not the
    interleaved stream; windowing is per system, so this is the
    coordinate system invariant checkers need.
    """

    system: str
    start: int
    length: int
    concept: str


@dataclass
class FuzzedStream:
    """One fuzz episode: interleaved records plus full ground truth."""

    records: list[LogRecord]
    planted: list[PlantedAnomaly]
    seed: int
    systems: tuple[str, ...]
    lines_per_system: int

    def by_system(self) -> dict[str, list[LogRecord]]:
        """Records grouped by system, in per-system emission order."""
        grouped: dict[str, list[LogRecord]] = {system: [] for system in self.systems}
        for record in self.records:
            grouped[record.system].append(record)
        return grouped

    def expected_window_labels(self, window: int = 10, step: int = 5,
                               ) -> dict[str, list[bool]]:
        """Ground-truth verdict per completed window, per system.

        Mirrors the runtime's windowing exactly (consecutive
        ``window``-sized views advanced by ``step``); a window is
        anomalous when any of its lines is.
        """
        labels: dict[str, list[bool]] = {}
        for system, records in self.by_system().items():
            flags = [record.is_anomalous for record in records]
            verdicts = []
            for start in range(0, len(flags) - window + 1, step):
                verdicts.append(any(flags[start:start + window]))
            labels[system] = verdicts
        return labels


class LogStreamFuzzer:
    """Generates seeded fuzz episodes over the shared event catalog.

    Parameters
    ----------
    systems:
        Logical system names in the stream.  Values may be catalog
        dialects (``bgl``, ``spirit``, ...) or arbitrary names when
        ``dialects`` maps them to one — the runtime routes and windows by
        the logical name while messages speak the mapped dialect.
    dialects:
        Optional mapping logical name -> catalog dialect.
    lines_per_system:
        Lines generated per system before interleaving.
    anomaly_bursts:
        Planted bursts per system.
    burst_length:
        Inclusive (min, max) lines per planted burst.
    parameter_noise:
        Per-line probability of one message perturbation (digit jitter,
        token re-casing, filler-token insertion).
    scenario:
        Optional :mod:`repro.logs.scenarios` workload shape (name or
        profile): volume storms arrive as runs of *normal-looking* lines
        at storm rate labeled ``volume_storm``, template drift rewords
        messages with a position-ramped probability, seasonal cycles
        modulate inter-arrival times.  ``None``/``"steady"`` keeps the
        stream byte-identical to pre-scenario fuzzers.
    """

    def __init__(self, systems=("bgl", "spirit", "thunderbird"), *,
                 dialects: dict[str, str] | None = None,
                 lines_per_system: int = 120,
                 anomaly_bursts: int = 3,
                 burst_length: tuple[int, int] = (3, 6),
                 parameter_noise: float = 0.0,
                 scenario: ScenarioProfile | str | None = None,
                 start_time: datetime | None = None):
        if lines_per_system <= 0:
            raise ValueError("lines_per_system must be positive")
        if anomaly_bursts < 0:
            raise ValueError("anomaly_bursts must be non-negative")
        if not 0.0 <= parameter_noise <= 1.0:
            raise ValueError(f"parameter_noise must be in [0, 1], got {parameter_noise}")
        low, high = burst_length
        if low <= 0 or high < low:
            raise ValueError(f"invalid burst_length {burst_length}")
        self.systems = tuple(systems)
        if not self.systems:
            raise ValueError("at least one system is required")
        self.dialects = dict(dialects or {})
        self.lines_per_system = lines_per_system
        self.anomaly_bursts = anomaly_bursts
        self.burst_length = (low, high)
        self.parameter_noise = parameter_noise
        self.scenario = get_scenario(scenario)
        self.start_time = start_time or datetime(2024, 6, 1, 0, 0, 0)

    # ------------------------------------------------------------------
    def _dialect_of(self, system: str) -> str:
        return self.dialects.get(system, system)

    def _perturb(self, message: str, rng: np.random.Generator) -> str:
        """One noise operation: jitter a digit run, re-case a token, or
        splice in a filler token."""
        tokens = message.split(" ")
        if not tokens:
            return message
        op = int(rng.integers(3))
        index = int(rng.integers(len(tokens)))
        token = tokens[index]
        if op == 0 and any(ch.isdigit() for ch in token):
            tokens[index] = "".join(
                str(int(rng.integers(10))) if ch.isdigit() else ch for ch in token
            )
        elif op == 1:
            tokens[index] = token.upper() if token.islower() else token.lower()
        else:
            tokens.insert(index, _NOISE_TOKENS[int(rng.integers(len(_NOISE_TOKENS)))])
        return " ".join(tokens)

    def _plant_offsets(self, rng: np.random.Generator,
                       lengths: list[int]) -> list[int]:
        """Non-overlapping burst start offsets (padded by one normal line)."""
        offsets: list[int] = []
        taken: set[int] = set()
        for length in lengths:
            limit = self.lines_per_system - length
            if limit <= 0:
                break
            for _attempt in range(64):
                start = int(rng.integers(0, limit))
                span = set(range(start - 1, start + length + 1))
                if not span & taken:
                    offsets.append(start)
                    taken |= set(range(start, start + length))
                    break
        return offsets

    def _system_stream(self, system: str, seed_key: tuple,
                       ) -> tuple[list[LogRecord], list[PlantedAnomaly]]:
        rng = np.random.default_rng(seed_key)
        dialect = self._dialect_of(system)
        try:
            profile = get_profile(dialect)
        except KeyError as exc:
            raise ValueError(
                f"unknown dialect {dialect!r} for system {system!r}; "
                "map it via dialects= or use a catalog system") from exc
        normal = concepts_for_system(dialect, EventKind.NORMAL)
        anomalous = concepts_for_system(dialect, EventKind.ANOMALOUS)
        if not normal or not anomalous:
            raise ValueError(f"dialect {dialect!r} lacks normal or anomalous concepts")
        params = ParameterSampler(rng)
        # Zipf-ish popularity over normal concepts, as in the generator.
        ranks = np.arange(1, len(normal) + 1, dtype=np.float64)
        weights = (1.0 / ranks) / (1.0 / ranks).sum()

        low, high = self.burst_length
        lengths = [int(rng.integers(low, high + 1))
                   for _ in range(self.anomaly_bursts)]
        offsets = self._plant_offsets(rng, lengths)
        planted = []
        burst_concept: dict[int, str] = {}
        anomalous_lines: set[int] = set()
        for start, length in zip(offsets, lengths):
            concept = anomalous[int(rng.integers(len(anomalous)))]
            planted.append(PlantedAnomaly(
                system=system, start=start, length=length, concept=concept.name,
            ))
            for line in range(start, start + length):
                burst_concept[line] = concept.name
                anomalous_lines.add(line)

        concept_by_name = {c.name: c for c in anomalous}
        scenario = self.scenario
        clock = self.start_time
        records: list[LogRecord] = []
        denominator = max(self.lines_per_system - 1, 1)
        for line in range(self.lines_per_system):
            t = line / denominator
            rate = scenario.rate_multiplier(t) if scenario is not None else 1.0
            clock = clock + timedelta(seconds=float(rng.exponential(0.8 / rate)))
            is_anomalous = line in anomalous_lines
            in_storm = (scenario is not None and scenario.in_storm(t)
                        and not is_anomalous)
            if is_anomalous:
                concept = concept_by_name[burst_concept[line]]
                concept_name = concept.name
                severity = profile.severity_labels[1]
            else:
                # Storm lines are ordinary traffic arriving too fast:
                # normal concept, normal severity, anomalous label.
                concept = normal[int(rng.choice(len(normal), p=weights))]
                concept_name = VOLUME_STORM_CONCEPT if in_storm else concept.name
                severity = profile.severity_labels[0]
            message = params.fill(concept.phrases[dialect])
            if scenario is not None:
                probability = scenario.drift_probability(t)
                if probability > 0.0:
                    message = _reword_message(message, rng, probability)
            if self.parameter_noise > 0 and rng.random() < self.parameter_noise:
                message = self._perturb(message, rng)
            host = f"{profile.host_prefix}{int(rng.integers(0, 512)):03d}"
            stamp = clock.strftime(profile.timestamp_format)
            records.append(LogRecord(
                timestamp=clock,
                system=system,
                host=host,
                severity=severity,
                message=message,
                raw=f"{stamp} {host} {severity} {message}",
                is_anomalous=is_anomalous or in_storm,
                concept=concept_name,
            ))
        return records, planted

    # ------------------------------------------------------------------
    def generate(self, seed: int = 0) -> FuzzedStream:
        """One fuzz episode: a pure function of the fuzzer config + seed."""
        streams: list[list[LogRecord]] = []
        planted: list[PlantedAnomaly] = []
        for index, system in enumerate(self.systems):
            records, bursts = self._system_stream(system, (seed, index))
            streams.append(records)
            planted.extend(bursts)
        # Seeded interleave: repeatedly pick a source weighted by how many
        # lines it still holds, so systems mix the way concurrent streams
        # arrive at a collector (per-system order is preserved).
        rng = np.random.default_rng((seed, len(self.systems), 104729))
        heads = [0] * len(streams)
        merged: list[LogRecord] = []
        remaining = sum(len(stream) for stream in streams)
        while remaining:
            counts = np.array([len(stream) - head
                               for stream, head in zip(streams, heads)],
                              dtype=np.float64)
            pick = int(rng.choice(len(streams), p=counts / counts.sum()))
            merged.append(streams[pick][heads[pick]])
            heads[pick] += 1
            remaining -= 1
        return FuzzedStream(
            records=merged,
            planted=sorted(planted, key=lambda p: (p.system, p.start)),
            seed=seed,
            systems=self.systems,
            lines_per_system=self.lines_per_system,
        )
