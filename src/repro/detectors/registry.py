"""One ``--detectors`` spec grammar shared by every CLI entry point.

``repro replay``, ``serve`` and ``fuzz`` all accept the same
``--detectors`` spec and resolve it here, mirroring the ``--llm``
grammar from :mod:`repro.llm.factory`::

    --detectors ewma,lof,rules
    --detectors ewma,lof,model:vote
    --detectors ewma,lof,rules,model:stacker,threshold=0.6

Grammar: ``member[,member...][:mode[,key=value...]]``.  Members before
the colon name portfolio builders from :data:`DETECTOR_BUILDERS`; the
first token after the colon is the combination mode (``vote`` / ``max``
/ ``stacker``, default ``max``), and the remaining ``key=value`` pairs
are :class:`~repro.detectors.ensemble.Ensemble` options with the same
bool/int/float/str coercion the LLM specs use.

The ``model`` member adapts whatever fitted pipeline the caller passes;
with none (a day-0 system has nothing to load) the member is present
but permanently degraded, which is exactly the behavior the day-0 fuzz
invariants pin down.
"""

from __future__ import annotations

from typing import Any, Callable

from .base import Detector
from .ensemble import ENSEMBLE_MODES, Ensemble
from .ewma import EwmaRateDetector
from .lof import LofLiteDetector
from .model import ModelDetector
from .rules import RuleDetector

__all__ = [
    "DETECTOR_BUILDERS", "DEFAULT_DETECTORS_SPEC",
    "parse_detectors_spec", "build_detector", "ensemble_from_spec",
]

DEFAULT_DETECTORS_SPEC = "ewma,lof,rules,model:max"


def _coerce(raw: str) -> Any:
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def _build_model(pipeline, seed: int) -> Detector:
    return ModelDetector(pipeline)


DETECTOR_BUILDERS: dict[str, Callable[[Any, int], Detector]] = {
    "ewma": lambda pipeline, seed: EwmaRateDetector(),
    "lof": lambda pipeline, seed: LofLiteDetector(),
    "rules": lambda pipeline, seed: RuleDetector(),
    "model": _build_model,
}


def parse_detectors_spec(spec: str) -> tuple[list[str], str, dict[str, Any]]:
    """Split ``member,...[:mode,key=value...]`` into members, mode, options."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty detectors spec")
    member_part, _, tail = spec.partition(":")
    members = [token.strip().lower() for token in member_part.split(",") if token.strip()]
    if not members:
        raise ValueError(f"no detector members in spec {spec!r}")
    unknown = [name for name in members if name not in DETECTOR_BUILDERS]
    if unknown:
        known = ", ".join(sorted(DETECTOR_BUILDERS))
        raise ValueError(f"unknown detectors {unknown} (known: {known})")
    if len(set(members)) != len(members):
        raise ValueError(f"duplicate detector members in spec {spec!r}")
    mode = "max"
    options: dict[str, Any] = {}
    if tail:
        tokens = [token.strip() for token in tail.split(",")]
        head = tokens[0].lower()
        if "=" in tokens[0]:
            pairs = tokens
        else:
            if head not in ENSEMBLE_MODES:
                raise ValueError(
                    f"unknown ensemble mode {tokens[0]!r} in spec {spec!r} "
                    f"(expected one of {ENSEMBLE_MODES})")
            mode = head
            pairs = tokens[1:]
        for pair in pairs:
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed ensemble option {pair!r} in spec {spec!r} "
                    f"(expected key=value)")
            options[key] = _coerce(value.strip())
    return members, mode, options


def build_detector(name: str, *, pipeline=None, seed: int = 0) -> Detector:
    """Build one portfolio member by registry name."""
    builder = DETECTOR_BUILDERS.get(name)
    if builder is None:
        known = ", ".join(sorted(DETECTOR_BUILDERS))
        raise ValueError(f"unknown detector {name!r} (known: {known})")
    return builder(pipeline, seed)


def ensemble_from_spec(spec: str, *, pipeline=None, seed: int = 0,
                       registry=None) -> Ensemble:
    """Build the full ensemble named by ``spec``.

    ``pipeline`` is the fitted LogSynergy pipeline handed to the
    ``model`` member (``None`` on a day-0 system: the member degrades).
    """
    members, mode, options = parse_detectors_spec(spec)
    detectors = [build_detector(name, pipeline=pipeline, seed=seed)
                 for name in members]
    try:
        return Ensemble(detectors, mode, seed=seed, registry=registry, **options)
    except TypeError as exc:
        raise ValueError(f"bad options for detectors spec {spec!r}: {exc}") from exc
