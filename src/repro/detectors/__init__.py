"""Unsupervised detector portfolio + ensemble combiner.

The day-0 answer to "the learned model has never seen this system":
cheap statistical detectors over substrates the repo already has —
window arrival rates (EWMA), pre-trained embedding geometry (LOF-lite),
operational failure vocabulary (rules), plus the learned model itself
as one member among equals — combined by :class:`Ensemble` in front of
the serving runtime.  See DESIGN.md §11 for the portfolio contract,
the scenario catalog, and the day-0 story.
"""

from .base import Detector, DetectorError, calibrate, window_span_seconds
from .ensemble import ENSEMBLE_MODES, Ensemble, LogisticStacker
from .ewma import EwmaRateDetector
from .lof import LofLiteDetector
from .model import ModelDetector
from .registry import (
    DEFAULT_DETECTORS_SPEC,
    DETECTOR_BUILDERS,
    build_detector,
    ensemble_from_spec,
    parse_detectors_spec,
)
from .rules import FAILURE_TOKENS, RuleDetector

__all__ = [
    "Detector", "DetectorError", "calibrate", "window_span_seconds",
    "EwmaRateDetector", "LofLiteDetector", "RuleDetector", "ModelDetector",
    "FAILURE_TOKENS",
    "Ensemble", "LogisticStacker", "ENSEMBLE_MODES",
    "DETECTOR_BUILDERS", "DEFAULT_DETECTORS_SPEC",
    "parse_detectors_spec", "build_detector", "ensemble_from_spec",
]
