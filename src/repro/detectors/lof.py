"""LOF-lite kNN-distance detector over ``repro.embedding`` vectors.

Each window is summarized as the normalized mean of its message
embeddings from the cached pre-trained domain encoder
(:func:`repro.embedding.load_pretrained_encoder` — no per-system
training, which is what makes this member usable on a day-0 system).
Per system it keeps a bounded FIFO of recent window vectors and scores
a new window by a local-outlier-factor ratio: the distance to its k-th
nearest reference vector, divided by the typical k-th-neighbor distance
seen on recent windows of the same system (a running median, so up to
half the recent windows can be anomalous without inflating the scale).
A window that sits inside the cloud of recent windows scores near
ratio 1; a window full of never-seen semantics sits far outside and
the ratio grows with the gap.

The scored vector is always folded into the reference buffer — novel
templates gradually become the new normal (drift tolerance), while a
short planted burst cannot dominate a buffer dozens of windows deep.
"""

from __future__ import annotations

import statistics

import numpy as np

from .base import Detector, calibrate

__all__ = ["LofLiteDetector"]

_EPS = 1e-9


class _ReferenceSet:
    """Per-system FIFO of window vectors and recent k-NN distances."""

    __slots__ = ("vectors", "distances")

    def __init__(self) -> None:
        self.vectors: list[np.ndarray] = []
        self.distances: list[float] = []


class LofLiteDetector(Detector):
    """kNN-distance member over window embedding centroids."""

    name = "lof"
    warmup_windows = 6

    def __init__(
        self,
        *,
        k: int = 3,
        capacity: int = 64,
        scale_window: int = 32,
        center: float = 2.0,
        scale: float = 0.5,
        encoder=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if capacity <= k:
            raise ValueError(f"capacity must exceed k, got {capacity} <= {k}")
        self.k = k
        self.capacity = capacity
        self.scale_window = scale_window
        self.center = center
        self.scale = scale
        self._encoder = encoder
        self._references: dict[str, _ReferenceSet] = {}

    @property
    def encoder(self):
        if self._encoder is None:
            from repro.embedding import load_pretrained_encoder

            self._encoder = load_pretrained_encoder()
        return self._encoder

    def _window_vector(self, window: list) -> np.ndarray:
        matrix = self.encoder.encode_batch([entry.message for entry in window])
        if matrix.shape[0] == 0:
            return np.zeros(self.encoder.dim, dtype=np.float32)
        vec = matrix.mean(axis=0)
        norm = float(np.linalg.norm(vec))
        if norm > 0:
            vec = vec / norm
        return vec.astype(np.float32)

    def _knn_distance(self, vec: np.ndarray, refs: list[np.ndarray]) -> float:
        stack = np.stack(refs)
        distances = np.linalg.norm(stack - vec[None, :], axis=1)
        distances.sort()
        return float(distances[min(self.k, len(distances)) - 1])

    def score_window(self, system: str, window: list) -> float:
        state = self._references.setdefault(system, _ReferenceSet())
        vec = self._window_vector(window)
        score = 0.0
        if len(state.vectors) > self.k:
            distance = self._knn_distance(vec, state.vectors)
            reference = max(statistics.median(state.distances), _EPS) \
                if state.distances else _EPS
            if state.distances:
                ratio = distance / reference
                score = calibrate(ratio, center=self.center, scale=self.scale)
            state.distances.append(distance)
            if len(state.distances) > self.scale_window:
                state.distances.pop(0)
        state.vectors.append(vec)
        if len(state.vectors) > self.capacity:
            state.vectors.pop(0)
        return score
