"""Ensemble combiner: vote / max / learned logistic stacker.

Combines the portfolio's per-member scores into one calibrated verdict
per window.  Members are consulted in registration order; a member that
raises :class:`~repro.detectors.base.DetectorError` is degraded for
that window (counted on ``detectors.<name>.errors``) and the remaining
live members carry the verdict — this is the mechanism behind the
"degraded model keeps unsupervised members live" fuzz invariant.
Members still inside their declared ``warmup_windows`` for a system are
fed every window (so they build state) but excluded from combination.

Combination modes:

``max``
    The portfolio fires if any member fires: ``max`` over live scores.
    Monotone in every member score, and the right default for a
    heterogeneous portfolio whose members own disjoint anomaly classes
    (only EWMA sees volume storms, only LOF sees semantic novelty).
``vote``
    Fraction of live members scoring above 0.5.  An exact tie (half the
    live members vote anomalous) resolves deterministically by the mean
    raw score — never by dict order or arrival timing.
``stacker``
    Logistic regression over the member score vector, trained on
    labeled windows via :meth:`Ensemble.fit`.  Training is full-batch
    gradient descent in float64 with the initial weights drawn from
    ``np.random.default_rng(seed)``, so a refit under the same seed and
    data is byte-identical.  Degraded/warming member scores are imputed
    at the neutral 0.5 both at fit and predict time.

Every consultation is mirrored to ``detectors.*`` obs counters (one
family per member plus ``detectors.ensemble.*`` for the combined
verdicts), all registered in :mod:`repro.obs.catalog`.
"""

from __future__ import annotations

import numpy as np

from repro.obs import get_registry

from .base import Detector, DetectorError

__all__ = ["Ensemble", "LogisticStacker", "ENSEMBLE_MODES"]

ENSEMBLE_MODES = ("vote", "max", "stacker")


class LogisticStacker:
    """Deterministic full-batch logistic regression over member scores."""

    def __init__(self, n_members: int, *, seed: int = 0, learning_rate: float = 0.5,
                 epochs: int = 300, l2: float = 1e-3) -> None:
        if n_members < 1:
            raise ValueError(f"stacker needs at least one member, got {n_members}")
        self.n_members = n_members
        self.seed = seed
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights = np.zeros(n_members, dtype=np.float64)
        self.bias = 0.0
        self.fitted = False

    @staticmethod
    def _sigmoid(z):
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def fit(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        """Fit on an ``(n_windows, n_members)`` score matrix; byte-identical
        for identical inputs and seed."""
        matrix = np.asarray(matrix, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_members:
            raise ValueError(
                f"expected (n, {self.n_members}) score matrix, got {matrix.shape}")
        if matrix.shape[0] != labels.shape[0]:
            raise ValueError(
                f"{matrix.shape[0]} windows but {labels.shape[0]} labels")
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0.0, 0.01, size=self.n_members)
        bias = 0.0
        n = matrix.shape[0]
        for _ in range(self.epochs):
            predictions = self._sigmoid(matrix @ weights + bias)
            gradient = matrix.T @ (predictions - labels) / n + self.l2 * weights
            weights -= self.learning_rate * gradient
            bias -= self.learning_rate * float(np.mean(predictions - labels))
        self.weights = weights
        self.bias = bias
        self.fitted = True

    def predict(self, scores: np.ndarray) -> float:
        if not self.fitted:
            raise DetectorError("logistic stacker used before fit")
        return float(self._sigmoid(float(np.dot(self.weights, scores) + self.bias)))


class Ensemble:
    """Portfolio combiner over :class:`Detector` members."""

    def __init__(self, members: list[Detector], mode: str = "max", *,
                 threshold: float = 0.5, seed: int = 0, registry=None) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        names = [member.name for member in members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate member names: {names}")
        if mode not in ENSEMBLE_MODES:
            raise ValueError(
                f"unknown ensemble mode {mode!r}; expected one of {ENSEMBLE_MODES}")
        self.members = list(members)
        self.mode = mode
        self.threshold = threshold
        self.seed = seed
        self.stacker = LogisticStacker(len(members), seed=seed)
        self._seen: dict[tuple[str, str], int] = {}
        registry = registry if registry is not None else get_registry()
        self._member_counters = {
            member.name: {
                "windows": registry.counter(f"detectors.{member.name}.windows"),
                "anomalous": registry.counter(f"detectors.{member.name}.anomalous"),
                "errors": registry.counter(f"detectors.{member.name}.errors"),
                "warmups": registry.counter(f"detectors.{member.name}.warmups"),
            }
            for member in self.members
        }
        self._windows = registry.counter("detectors.ensemble.windows")
        self._anomalous = registry.counter("detectors.ensemble.anomalous")
        self._member_errors = registry.counter("detectors.ensemble.member_errors")
        self._stacker_fits = registry.counter("detectors.ensemble.stacker_fits")

    # ------------------------------------------------------------------
    def member_error_count(self, name: str) -> int:
        """Degraded-consultation count for one member (obs-backed)."""
        return int(self._member_counters[name]["errors"].value)

    def member_scored_count(self, name: str) -> int:
        """Live (post-warmup, non-degraded) window count for one member."""
        return int(self._member_counters[name]["windows"].value)

    def member_scores(self, system: str, window: list) -> list[float | None]:
        """Consult every member; ``None`` marks degraded or warming members."""
        scores: list[float | None] = []
        for member in self.members:
            counters = self._member_counters[member.name]
            key = (member.name, system)
            observed = self._seen.get(key, 0)
            try:
                score = member.score_window(system, window)
            except DetectorError:
                counters["errors"].inc()
                self._member_errors.inc()
                scores.append(None)
                continue
            self._seen[key] = observed + 1
            if observed < member.warmup_windows:
                counters["warmups"].inc()
                scores.append(None)
                continue
            score = max(0.0, min(1.0, float(score)))
            counters["windows"].inc()
            if score > 0.5:
                counters["anomalous"].inc()
            scores.append(score)
        return scores

    def combine(self, scores: list[float | None]) -> float:
        """Combine member scores (see module docstring for mode semantics)."""
        live = [s for s in scores if s is not None]
        if self.mode == "stacker":
            vector = np.array([0.5 if s is None else s for s in scores],
                              dtype=np.float64)
            return self.stacker.predict(vector)
        if not live:
            return 0.0
        if self.mode == "max":
            return max(live)
        votes = sum(1 for s in live if s > 0.5)
        fraction = votes / len(live)
        if fraction == 0.5:
            return sum(live) / len(live)
        return fraction

    def score_window(self, system: str, window: list) -> float:
        combined = self.combine(self.member_scores(system, window))
        self._windows.inc()
        if combined > self.threshold:
            self._anomalous.inc()
        return combined

    def score_windows(self, system: str, windows: list[list]) -> list[float]:
        """Score windows in stream order (members are stateful)."""
        return [self.score_window(system, window) for window in windows]

    # ------------------------------------------------------------------
    def fit(self, system: str, windows: list[list], labels) -> None:
        """Warm members on labeled windows; train the stacker when in use.

        Windows must be in per-system stream order.  Members' own
        ``fit`` hooks run first, then each window is scored through the
        portfolio to build the stacker's training matrix.
        """
        labels = np.asarray(labels, dtype=np.float64)
        if len(windows) != labels.shape[0]:
            raise ValueError(f"{len(windows)} windows but {labels.shape[0]} labels")
        for member in self.members:
            member.fit(system, windows, labels)
        matrix = np.array(
            [[0.5 if s is None else s for s in self.member_scores(system, window)]
             for window in windows],
            dtype=np.float64,
        )
        if self.mode == "stacker":
            if matrix.shape[0] == 0:
                raise ValueError("stacker fit needs at least one labeled window")
            if len(set(labels.tolist())) < 2:
                # A single-class fit silently learns "always normal" (or
                # "always anomalous") — refuse instead: day-0 targets
                # without labeled anomalies should combine with max/vote.
                raise ValueError(
                    "stacker fit needs both classes in the training labels; "
                    "use mode='max' or 'vote' when labeled anomalies are "
                    "unavailable")
            self.stacker.fit(matrix, labels)
            self._stacker_fits.inc()

    def predict_sequences(self, system: str, sequences: list) -> np.ndarray:
        """Binary verdicts for :class:`~repro.logs.sequences.LogSequence`
        batches — the :class:`~repro.evaluation.experiment` adapter."""
        scores = self.score_windows(
            system, [list(sequence.records) for sequence in sequences])
        return (np.asarray(scores, dtype=np.float64) > self.threshold).astype(np.int64)
