"""ModelDetector: the learned LogSynergy pipeline as a portfolio member.

Adapts a fitted :class:`~repro.core.pipeline.LogSynergy` to the
:class:`~repro.detectors.base.Detector` contract so the transfer-learned
model votes alongside the unsupervised members.  The adapter is where
the day-0 story becomes concrete: with no model loaded (``pipeline=None``
— a brand-new system has nothing to load) every score raises
:class:`~repro.detectors.base.DetectorError`, the ensemble counts the
member as degraded, and the unsupervised members carry the verdict.
The same degradation path absorbs a model that dies mid-stream, so a
broken checkpoint can never take the whole portfolio down with it.
"""

from __future__ import annotations

from .base import Detector, DetectorError

__all__ = ["ModelDetector"]


class ModelDetector(Detector):
    """Learned-model member; degrades to :class:`DetectorError` when absent."""

    name = "model"
    warmup_windows = 0

    def __init__(self, pipeline=None) -> None:
        self.pipeline = pipeline

    @property
    def available(self) -> bool:
        return self.pipeline is not None and getattr(self.pipeline, "model", None) is not None

    def score_window(self, system: str, window: list) -> float:
        if not self.available:
            raise DetectorError("learned model unavailable (day-0 / not loaded)")
        try:
            report = self.pipeline.detect_stream([entry.message for entry in window])
        except Exception as exc:  # lint: disable=blanket-except
            # A dying model must degrade this member, not kill the
            # portfolio: the ensemble catches DetectorError and keeps
            # the unsupervised members live.
            raise DetectorError(f"learned model failed to score: {exc}") from exc
        return max(0.0, min(1.0, float(report.score)))
