"""EWMA rate-spike detector: flags volume storms from window counts.

The only signal is the window's arrival rate — lines per second derived
from the first/last record timestamps — so this member catches the one
anomaly class the semantic detectors are blind to: a storm of perfectly
normal-looking messages arriving far too fast.  Per system it keeps an
exponentially-weighted mean/variance of the log-rate and scores each
window by its positive z-score.  Log-rate rather than raw rate keeps
the statistic symmetric across traffic levels (an 8x storm is the same
+2.08 shift whether the baseline is 1 or 100 lines/sec), which is what
lets one calibration serve every system profile.

Spike windows are excluded from the baseline update (the value is
clipped to ``mean + clip_sigma * std`` before folding in) so a
multi-window storm cannot poison its own baseline; slow seasonal drift
still tracks through the EWMA itself.
"""

from __future__ import annotations

import math

from .base import Detector, calibrate, window_span_seconds

__all__ = ["EwmaRateDetector"]

_EPS = 1e-9


class _RateState:
    """Per-system EWMA of log-rate mean and variance."""

    __slots__ = ("mean", "var", "count")

    def __init__(self) -> None:
        self.mean = 0.0
        self.var = 0.0
        self.count = 0


class EwmaRateDetector(Detector):
    """Window-count rate-spike member (see module docstring)."""

    name = "ewma"
    warmup_windows = 4

    def __init__(
        self,
        *,
        alpha: float = 0.15,
        center: float = 3.0,
        scale: float = 1.0,
        clip_sigma: float = 3.0,
        min_std: float = 0.2,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.center = center
        self.scale = scale
        self.clip_sigma = clip_sigma
        # Floor on the deviation denominator: early in a stream the EWMA
        # variance is built from a handful of samples and can collapse
        # toward zero, turning ordinary jitter into huge z-scores.
        self.min_std = min_std
        self._states: dict[str, _RateState] = {}

    @staticmethod
    def _log_rate(window: list) -> float:
        if len(window) < 2:
            return 0.0
        span = window_span_seconds(window)
        rate = (len(window) - 1) / max(span, _EPS)
        return math.log(max(rate, _EPS))

    def score_window(self, system: str, window: list) -> float:
        state = self._states.setdefault(system, _RateState())
        value = self._log_rate(window)
        if state.count == 0:
            state.mean = value
            state.count = 1
            return 0.0
        std = max(math.sqrt(max(state.var, 0.0)), self.min_std)
        z = (value - state.mean) / std if state.count >= 2 else 0.0
        # Clip before updating so a sustained storm cannot drag the
        # baseline up fast enough to mask itself.
        clipped = min(value, state.mean + self.clip_sigma * std)
        delta = clipped - state.mean
        state.mean += self.alpha * delta
        state.var = (1.0 - self.alpha) * (state.var + self.alpha * delta * delta)
        state.count += 1
        if z <= 0.0:
            return 0.0
        return calibrate(z, center=self.center, scale=self.scale)
