"""Rule/pattern detector: operational failure vocabulary, memoized.

The cheapest member of the portfolio and the strongest one on a day-0
system: a fixed vocabulary of operational failure tokens (the language
ops teams grep for — ``failed``, ``panic``, ``exceeded``, ...) scored
per line and memoized through the existing
:class:`~repro.deploy.pattern_library.PatternLibrary`.  Each distinct
normalized line is evaluated once per system; repeats are served from
the library (its hit/miss stats make the memoization observable), which
is the same escalation-avoidance trick the runtime gate plays for the
learned model.

The vocabulary deliberately includes the ``repro.logs.drift`` synonym
targets (``unsuccessful``, ``fault``, ``surpassed``, ``lapsed``) so a
gradually-drifting system does not silently blind this member, and
matching is case-insensitive because fuzzed parameter noise re-cases
tokens.
"""

from __future__ import annotations

import re
import zlib

from repro.deploy.pattern_library import PatternLibrary

from .base import Detector

__all__ = ["RuleDetector", "FAILURE_TOKENS"]

# Tokens that only ever appear in failure narration, plus the drift
# synonyms they reword into.  Deliberately excludes words that show up
# in healthy operational chatter ("down", "closed", "stopped").
FAILURE_TOKENS: frozenset[str] = frozenset({
    "failed", "failure", "failures", "unsuccessful",
    "error", "errors", "fault", "faults", "fatal", "panic",
    "exceeded", "surpassed", "exhausted", "expired", "lapsed",
    "timeout", "timeouts", "refused", "rejected", "aborted",
    "corrupt", "corrupted", "corruption", "crashed", "segfault",
    "stalled", "stuck", "frozen", "wedged", "deadlock", "deadlocked",
    "killed", "terminated", "unrecoverable", "invalid", "oom",
    "watchdog", "critical", "severe", "alarm",
})

_TOKEN_RE = re.compile(r"[a-z]+")


class RuleDetector(Detector):
    """Keyword-rule member memoized through a per-system PatternLibrary."""

    name = "rules"
    warmup_windows = 0

    def __init__(self, *, tokens: frozenset[str] | None = None,
                 max_patterns: int = 100_000) -> None:
        self.tokens = FAILURE_TOKENS if tokens is None else frozenset(tokens)
        self.max_patterns = max_patterns
        self._libraries: dict[str, PatternLibrary] = {}

    def library_of(self, system: str) -> PatternLibrary:
        library = self._libraries.get(system)
        if library is None:
            library = PatternLibrary(max_patterns=self.max_patterns)
            self._libraries[system] = library
        return library

    def _line_flagged(self, library: PatternLibrary, message: str) -> bool:
        pattern = (zlib.crc32(message.lower().encode("utf-8")),)
        known = library.lookup(pattern)
        if known is not None:
            return known
        flagged = any(token in self.tokens
                      for token in _TOKEN_RE.findall(message.lower()))
        library.remember(pattern, flagged)
        return flagged

    def score_window(self, system: str, window: list) -> float:
        library = self.library_of(system)
        flagged = sum(1 for entry in window
                      if self._line_flagged(library, entry.message))
        if flagged == 0:
            return 0.0
        # One failure line is already a confident verdict; additional
        # flagged lines push the score toward certainty.
        return min(0.8 + 0.1 * flagged, 1.0)
