"""The detector contract: fit-optional scorers over normalized windows.

A *detector* maps one completed window of a system's log stream to a
calibrated anomaly score in ``[0, 1]`` (0.5 is the conventional verdict
threshold, matching :class:`~repro.core.report.AnomalyReport`).  The
contract is deliberately narrow so unsupervised statistical members and
the learned model share one interface:

* ``score_window(system, window)`` — window entries only need
  ``.message`` and ``.timestamp`` attributes, which both
  :class:`~repro.logs.generator.LogRecord` and the runtime's normalized
  :class:`~repro.deploy.formatter.UnifiedLog` satisfy.  Detectors keep
  any rolling state **per system**: a system's windows always arrive in
  per-system stream order (the runtime guarantees this for every shard
  count), and cross-system interleaving must not affect verdicts — that
  per-system scoping is what keeps ``repro replay --detectors`` byte-
  identical across ``--shards`` values.
* ``warmup_windows`` — how many windows of a system the detector must
  observe before its scores mean anything.  The ensemble still feeds
  warming members (so they build state) but excludes their scores from
  the combination.
* ``fit(system, windows, labels)`` — optional: statistical members
  ignore it, the logistic stacker and the model adapter use it.  A
  detector that cannot score (no model loaded, dependency down) raises
  :class:`DetectorError`; the ensemble degrades that member and keeps
  the unsupervised members live instead of dropping the window.

Every concrete ``score_window`` implementation must live in this
package — the ``detector-outside-registry`` lint rule enforces it, the
same way ``direct-llm-call`` fences provider construction into
``repro.llm``.
"""

from __future__ import annotations

import math

__all__ = ["DetectorError", "Detector", "calibrate", "window_span_seconds"]


class DetectorError(RuntimeError):
    """A detector member failed to score (the ensemble degrades it)."""


def calibrate(deviation: float, center: float = 3.0, scale: float = 1.0) -> float:
    """Squash a non-negative deviation statistic into a ``[0, 1]`` score.

    A logistic centered at ``center``: deviations at the center score
    exactly 0.5, ``center + 2*scale`` scores ~0.88, and ordinary noise
    well below the center stays under the verdict threshold.  Every
    statistical member routes its raw statistic through this one
    function so "score > 0.5" means the same thing across the portfolio.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return 1.0 / (1.0 + math.exp(-(deviation - center) / scale))


def window_span_seconds(window: list) -> float:
    """Elapsed seconds between a window's first and last record.

    Window timestamps are ``datetime`` objects in generated streams and
    may be plain epoch floats in hand-built tests; both are accepted.
    """
    if len(window) < 2:
        return 0.0
    first, last = window[0].timestamp, window[-1].timestamp
    if hasattr(last, "__sub__") and hasattr(last - first, "total_seconds"):
        return float((last - first).total_seconds())
    return float(last) - float(first)


class Detector:
    """Base class for portfolio members (see the module docstring).

    Subclasses set ``name`` and ``warmup_windows`` as class attributes
    and implement :meth:`score_window`; ``fit`` defaults to a no-op so
    purely unsupervised members need not define it.
    """

    name: str = "detector"
    warmup_windows: int = 0

    def fit(self, system: str, windows: list, labels=None) -> None:
        """Optional supervision hook; the default learns nothing."""

    def score_window(self, system: str, window: list) -> float:
        """Calibrated anomaly score in ``[0, 1]`` for one window."""
        raise NotImplementedError
