"""LogSynergy reproduction: LLM-powered transfer learning for log anomaly
detection in new software systems (ICDE 2025).

Top-level convenience imports::

    from repro import LogSynergy, LogSynergyConfig
    from repro.logs import build_dataset
    from repro.evaluation import CrossSystemExperiment
"""

from .config import ExperimentConfig, LogSynergyConfig
from .core import LogSynergy

__version__ = "1.0.0"

__all__ = ["LogSynergy", "LogSynergyConfig", "ExperimentConfig", "__version__"]
