"""Shared result types for the static-analysis subsystem.

Both layers of :mod:`repro.analysis` — the model auditor and the project
linter — report their results as :class:`Finding` records so callers
(CLI, CI gate, tests) can filter by severity and render them uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding", "AuditReport"]


class Severity(enum.IntEnum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the CI gate; ``WARNING`` findings are
    suspicious but may be intentional (e.g. deliberately shared weights);
    ``INFO`` findings record what the auditor could not check.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    """One defect (or note) located somewhere in a model or source tree.

    ``path`` is a dotted parameter/module path for audit findings and a
    ``file:line`` location for lint findings.
    """

    code: str
    severity: Severity
    path: str
    message: str
    hint: str = ""

    def format(self) -> str:
        """One-line human-readable rendering."""
        location = f" at {self.path}" if self.path else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"[{self.severity.name}] {self.code}{location}: {self.message}{hint}"


@dataclass
class AuditReport:
    """Everything the model auditor learned about one module tree."""

    model: str
    findings: list[Finding] = field(default_factory=list)
    num_parameters: int = 0
    num_modules: int = 0
    probed: bool = False
    shape_checked: bool = False

    def add(self, code: str, severity: Severity, path: str, message: str,
            hint: str = "") -> None:
        """Append a finding."""
        self.findings.append(Finding(code, severity, path, message, hint))

    @property
    def errors(self) -> list[Finding]:
        """Findings that must be fixed."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Findings worth a look."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the audit produced no ERROR findings."""
        return not self.errors

    def by_code(self, code: str) -> list[Finding]:
        """All findings with a given code."""
        return [f for f in self.findings if f.code == code]

    def format(self, verbose: bool = False) -> str:
        """Multi-line summary; INFO findings only shown when verbose."""
        status = "PASS" if self.ok else "FAIL"
        checks = []
        if self.shape_checked:
            checks.append("shapes")
        if self.probed:
            checks.append("probe")
        suffix = f" [{'+'.join(checks)}]" if checks else ""
        lines = [
            f"audit {self.model}: {status} — {self.num_modules} modules, "
            f"{self.num_parameters} parameters, {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings{suffix}"
        ]
        for finding in self.findings:
            if finding.severity is Severity.INFO and not verbose:
                continue
            lines.append(f"  {finding.format()}")
        return "\n".join(lines)
