"""Project symbol table: every module, class, function and import edge.

The per-file linter (:mod:`repro.analysis.lint`) sees one tree at a
time; the interprocedural passes in :mod:`repro.analysis.flow` need the
*project* — which module defines which name, what an imported alias
resolves to, and where a re-exported symbol really lives.  This module
builds that table once from parsed sources and answers name-resolution
queries against it.

Module names are derived structurally: a file's dotted name is its path
relative to the outermost ancestor directory that still carries an
``__init__.py`` (so ``src/repro/runtime/queues.py`` →
``repro.runtime.queues`` and a bare script keeps its stem).  Imports are
collected from the whole tree — this codebase deliberately defers many
imports into function bodies to break cycles, and the call graph must
see through those too.

Everything here is pure AST bookkeeping: no module is ever imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .lint import SourceFile

__all__ = [
    "FunctionSymbol", "ClassSymbol", "ModuleSymbol", "SymbolTable",
    "module_name_for", "parse_files",
]


def module_name_for(path: str | Path) -> str:
    """Dotted module name for a source file, derived from ``__init__.py``
    package markers on the filesystem.

    Falls back to the bare stem for stand-alone scripts (benchmarks,
    examples).  ``__init__.py`` itself names its package.
    """
    path = Path(path)
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    qualname: str               # e.g. repro.runtime.queues.ShardQueue.offer
    module: "ModuleSymbol"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None   # owning class qualname, None for free functions

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionSymbol({self.qualname})"


@dataclass
class ClassSymbol:
    """One class definition plus its methods and (textual) bases."""

    qualname: str
    module: "ModuleSymbol"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)     # dotted base names, unresolved
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassSymbol({self.qualname})"


@dataclass
class ModuleSymbol:
    """One parsed module: tree, suppression source, and import aliases."""

    name: str
    path: str
    tree: ast.Module
    source: SourceFile
    # Local alias -> fully qualified dotted target ("np" -> "numpy",
    # "InferenceRuntime" -> "repro.runtime.InferenceRuntime").
    imports: dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModuleSymbol({self.name})"


def _dotted(node: ast.expr) -> str | None:
    """Flatten a Name/Attribute chain to ``a.b.c`` (None if not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _package_of(module_name: str, path: str) -> str:
    """The package a module lives in, for resolving relative imports."""
    if Path(path).stem == "__init__":
        return module_name          # a package's __init__ is the package
    head, _, _tail = module_name.rpartition(".")
    return head


def _collect_imports(module: ModuleSymbol) -> None:
    package = _package_of(module.name, module.path)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                module.imports.setdefault(local, target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: climb level-1 packages from here.
                base_parts = package.split(".") if package else []
                if node.level - 1:
                    base_parts = base_parts[: -(node.level - 1)] or []
                base = ".".join(base_parts)
            else:
                base = ""
            stem = node.module or ""
            origin = ".".join(p for p in (base, stem) if p)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{origin}.{alias.name}" if origin else alias.name
                module.imports.setdefault(local, target)


def parse_files(paths: Sequence[str | Path]) -> list[tuple[str, str, ast.Module]]:
    """Parse files into (path, text, tree) triples, skipping syntax errors
    (the per-file linter already reports those as violations)."""
    parsed = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError:
            continue
        parsed.append((str(path), text, tree))
    return parsed


class SymbolTable:
    """All modules/classes/functions of one analyzed tree, queryable."""

    def __init__(self):
        self.modules: dict[str, ModuleSymbol] = {}
        self.classes: dict[str, ClassSymbol] = {}
        self.functions: dict[str, FunctionSymbol] = {}
        # Method name -> every method symbol with that name, sorted by
        # qualname so every consumer iterates deterministically.
        self.methods_by_name: dict[str, list[FunctionSymbol]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Iterable[tuple[str, str, ast.Module]]) -> "SymbolTable":
        """Build from (path, text, tree) triples (see :func:`parse_files`)."""
        table = cls()
        for path, text, tree in sorted(files, key=lambda entry: entry[0]):
            name = module_name_for(path)
            if name in table.modules:
                # Stem collision between stand-alone scripts: qualify by
                # parent directory so both stay addressable.
                name = f"{Path(path).parent.name}.{name}"
            module = ModuleSymbol(name=name, path=path, tree=tree,
                                  source=SourceFile(path, text))
            _collect_imports(module)
            table.modules[name] = module
            table._index_module(module)
        for methods in table.methods_by_name.values():
            methods.sort(key=lambda symbol: symbol.qualname)
        return table

    def _index_module(self, module: ModuleSymbol) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _add_function(self, module: ModuleSymbol,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      class_name: str | None) -> FunctionSymbol:
        owner = class_name if class_name else module.name
        symbol = FunctionSymbol(qualname=f"{owner}.{node.name}",
                                module=module, node=node, class_name=class_name)
        self.functions[symbol.qualname] = symbol
        if class_name is not None:
            self.methods_by_name.setdefault(node.name, []).append(symbol)
        return symbol

    def _add_class(self, module: ModuleSymbol, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        symbol = ClassSymbol(qualname=qualname, module=module, node=node)
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                symbol.bases.append(dotted)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol.methods[item.name] = self._add_function(
                    module, item, class_name=qualname)
        self.classes[qualname] = symbol

    # ------------------------------------------------------------------
    def resolve(self, module: ModuleSymbol, dotted: str,
                _depth: int = 0) -> str | None:
        """Resolve a dotted name used in ``module`` to the qualname of a
        project symbol (function, class or module), following import
        aliases and package re-export chains.  Returns ``None`` for
        names that leave the analyzed tree (stdlib, numpy, …).
        """
        if _depth > 16:     # re-export cycle guard
            return None
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
        elif f"{module.name}.{head}" in self.functions \
                or f"{module.name}.{head}" in self.classes:
            dotted = f"{module.name}.{dotted}"
        return self._canonical(dotted, _depth)

    def _canonical(self, dotted: str, _depth: int = 0) -> str | None:
        """Chase re-exports until ``dotted`` names a real definition."""
        if _depth > 16:     # re-export cycle guard
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if dotted in self.modules:
            return dotted
        # Longest module prefix owning the head of the remainder: lets
        # "repro.runtime.InferenceRuntime" chase the package __init__'s
        # "from .engine import InferenceRuntime" re-export.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            owner = self.modules.get(prefix)
            if owner is None:
                continue
            leaf = parts[cut]
            rest = ".".join(parts[cut + 1:])
            scoped = f"{prefix}.{leaf}"
            if scoped in self.functions or scoped in self.classes:
                resolved: str | None = scoped
            elif leaf in owner.imports:
                resolved = self._canonical(owner.imports[leaf], _depth + 1) \
                    if _depth <= 16 else None
            else:
                return None
            if resolved is None:
                return None
            if not rest:
                return resolved
            if resolved in self.classes:
                # Class.method (possibly inherited from a project base).
                head, _, tail = rest.partition(".")
                method = self.class_method(resolved, head)
                if method is None:
                    return None
                return method.qualname if not tail else None
            candidate = f"{resolved}.{rest}"
            if candidate == dotted:     # nothing progressed: stop
                return None
            return self._canonical(candidate, _depth + 1)
        return None

    def class_method(self, class_qualname: str, method: str,
                     _seen: frozenset[str] = frozenset()) -> FunctionSymbol | None:
        """Look up a method on a class or (recursively) its project bases."""
        cls = self.classes.get(class_qualname)
        if cls is None or class_qualname in _seen:
            return None
        found = cls.methods.get(method)
        if found is not None:
            return found
        seen = _seen | {class_qualname}
        for base in cls.bases:
            resolved = self.resolve(cls.module, base)
            if resolved and resolved in self.classes:
                found = self.class_method(resolved, method, seen)
                if found is not None:
                    return found
        return None

    def stats(self) -> dict[str, int]:
        """Deterministic size summary (for reports and snapshots)."""
        return {
            "modules": len(self.modules),
            "classes": len(self.classes),
            "functions": len(self.functions),
        }
