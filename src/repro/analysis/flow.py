"""Interprocedural analysis passes over the project call graph.

Where :mod:`repro.analysis.rules` enforces *local* invariants one file
at a time, the passes here check **whole-program** properties that only
hold (or break) across module boundaries:

* ``flow/determinism`` — nothing reachable from the replay/serve/fuzz
  entry points may consume unseeded randomness, read the wall clock
  inline, or iterate an unordered ``set`` — the exact properties behind
  the ``repro replay --shards N`` byte-identity guarantee.  Injectable
  clock/seed seams are declared in an explicit allowlist.
* ``flow/lock-discipline`` — for every class owning a lock, attributes
  mutated both inside and outside the inferred guarded regions are
  flagged, ``*_locked`` helpers must only be called while holding a
  lock, and inconsistent (or self-deadlocking) acquisition orders are
  reported.  ``threading.Condition(self._lock)`` aliases to its
  underlying lock, and private helpers whose every call site holds a
  lock inherit that guard through the dataflow engine.
* ``flow/registry-drift`` — cross-checks the ``FAULT_POINTS`` registry
  against actually planted ``fault_point(...)`` call sites, and the
  metric names emitted through ``repro.obs`` against the documented
  catalog (:mod:`repro.obs.catalog`), in both directions.

All passes emit :class:`~repro.analysis.lint.LintViolation` records
(rule names carry the ``flow/`` namespace), honour the same suppression
comments, and are deterministic down to the byte — the CI snapshot diff
in ``scripts/smoke.sh`` depends on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph, CallSite
from .dataflow import ForwardDataflow
from .lint import LintViolation
from .rules import (
    _ALLOWED_RANDOM_ATTRS, _CLOCK_FUNCS, _DATETIME_FUNCS, _NUMPY_ALIASES,
)
from .symbols import ClassSymbol, FunctionSymbol, ModuleSymbol, SymbolTable

__all__ = [
    "DEFAULT_ENTRY_POINTS", "DETERMINISM_ALLOWLIST", "FLOW_PASSES",
    "FlowProject", "FlowPass", "register_flow_pass", "available_flow_passes",
    "select_flow_passes", "run_flow_passes",
    "DeterminismFlowPass", "LockDisciplinePass", "RegistryDriftPass",
]

# The deterministic surfaces: anything these reach must be replayable.
DEFAULT_ENTRY_POINTS = (
    "repro.cli._cmd_replay",
    "repro.cli._cmd_serve",
    "repro.cli._cmd_fuzz",
)

# Injectable clock/seed seams: functions that intentionally touch a
# nondeterminism source to *provide* it behind an injection point.
# Entries are exact qualnames or "prefix.*" namespaces.
DETERMINISM_ALLOWLIST = frozenset({
    # The obs registry owns the clock: metrics only read it through
    # explicitly started timers/spans, and replay runs with spans off.
    "repro.obs.*",
    # Tensor-level randn defaults to a fresh Generator for ad-hoc use;
    # every production call path injects a seeded rng.
    "repro.nn.tensor.randn",
})


@dataclass
class FlowProject:
    """One analyzed tree: symbol table, call graph, and entry points."""

    table: SymbolTable
    graph: CallGraph
    entry_points: tuple[str, ...] = DEFAULT_ENTRY_POINTS
    allowlist: frozenset = DETERMINISM_ALLOWLIST
    # Filled by passes as they run; rendered into the JSON report.
    stats: dict = field(default_factory=dict)

    @classmethod
    def build(cls, files, entry_points=DEFAULT_ENTRY_POINTS,
              allowlist=DETERMINISM_ALLOWLIST) -> "FlowProject":
        table = SymbolTable.build(files)
        project = cls(table=table, graph=CallGraph(table),
                      entry_points=tuple(entry_points),
                      allowlist=frozenset(allowlist))
        project.stats.update(table.stats())
        project.stats.update(project.graph.stats())
        return project

    def source_of(self, path: str):
        for module in self.table.modules.values():
            if module.path == path:
                return module.source
        return None


class FlowPass:
    """Base class: one interprocedural pass producing violations."""

    name = ""
    description = ""
    hint = ""

    def run(self, project: FlowProject) -> list[LintViolation]:
        raise NotImplementedError

    def violation(self, module: ModuleSymbol, node: ast.AST, message: str,
                  hint: str | None = None) -> LintViolation:
        return LintViolation(
            rule=self.name, path=module.path,
            line=getattr(node, "lineno", 1), col=getattr(node, "col_offset", 0),
            message=message, hint=self.hint if hint is None else hint,
        )


FLOW_PASSES: dict[str, type[FlowPass]] = {}


def register_flow_pass(cls: type[FlowPass]) -> type[FlowPass]:
    """Class decorator adding a pass to the ``flow/`` registry."""
    if not cls.name.startswith("flow/"):
        raise ValueError(f"{cls.__name__} must use the flow/ namespace")
    if cls.name in FLOW_PASSES:
        raise ValueError(f"duplicate flow pass name {cls.name!r}")
    FLOW_PASSES[cls.name] = cls
    return cls


def available_flow_passes() -> list[tuple[str, str]]:
    """(name, description) for every registered pass, sorted by name."""
    return sorted((name, cls.description) for name, cls in FLOW_PASSES.items())


def select_flow_passes(select) -> list[type[FlowPass]]:
    """Expand a select list (``flow/*`` wildcards allowed) to classes."""
    import fnmatch

    if select is None:
        return [FLOW_PASSES[name] for name in sorted(FLOW_PASSES)]
    chosen: list[type[FlowPass]] = []
    for pattern in select:
        matched = [name for name in sorted(FLOW_PASSES)
                   if fnmatch.fnmatchcase(name, pattern)]
        if not matched:
            raise KeyError(f"unknown flow pass {pattern!r}; "
                           f"available: {', '.join(sorted(FLOW_PASSES))}")
        for name in matched:
            if FLOW_PASSES[name] not in chosen:
                chosen.append(FLOW_PASSES[name])
    return chosen


def run_flow_passes(files, select=None,
                    entry_points=DEFAULT_ENTRY_POINTS,
                    allowlist=DETERMINISM_ALLOWLIST,
                    ) -> tuple[list[LintViolation], dict]:
    """Run selected passes over (path, text, tree) triples.

    Returns ``(violations, stats)`` with violations suppression-filtered
    and stable-sorted by (path, line, col, rule).
    """
    project = FlowProject.build(files, entry_points=entry_points,
                                allowlist=allowlist)
    violations: list[LintViolation] = []
    for pass_cls in select_flow_passes(select):
        violations.extend(pass_cls().run(project))
    kept = []
    for violation in violations:
        source = project.source_of(violation.path)
        if source is not None and source.suppressed(violation.line, violation.rule):
            continue
        kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
    return kept, project.stats


def _chain_text(chain: tuple[str, ...]) -> str:
    shown = chain if len(chain) <= 6 else chain[:3] + ("...",) + chain[-2:]
    return " -> ".join(shown)


def _allowlisted(qualname: str, allowlist: frozenset) -> bool:
    if qualname in allowlist:
        return True
    return any(entry.endswith(".*") and qualname.startswith(entry[:-1])
               for entry in allowlist)


# ----------------------------------------------------------------------
# flow/determinism
# ----------------------------------------------------------------------
@register_flow_pass
class DeterminismFlowPass(FlowPass):
    """Nondeterminism sources reachable from the replay/serve/fuzz
    entry points.  Generalizes the per-file ``wall-clock-call`` /
    ``global-numpy-random`` rules across module boundaries and adds the
    sources a single file cannot judge: unseeded stdlib ``random``,
    entropy taps (``uuid4``/``urandom``), and iteration over unordered
    sets."""

    name = "flow/determinism"
    description = ("forbid unseeded randomness, wall-clock reads and "
                   "unordered-set iteration reachable from replay/serve/fuzz")
    hint = ("inject a seeded Generator / clock through the call chain, or "
            "iterate sorted(...); allowlist intentional seams in "
            "repro.analysis.flow.DETERMINISM_ALLOWLIST")

    _ENTROPY = {
        ("uuid", "uuid1"), ("uuid", "uuid4"), ("os", "urandom"),
        ("secrets", "token_bytes"), ("secrets", "token_hex"),
        ("secrets", "randbelow"), ("secrets", "choice"),
    }
    _RANDOM_CONSTRUCTORS = {"Random", "SystemRandom"}

    def run(self, project: FlowProject) -> list[LintViolation]:
        chains = project.graph.reachable(list(project.entry_points))
        project.stats["entry_points"] = {
            entry: sum(1 for chain in chains.values() if chain[0] == entry)
            for entry in sorted(project.entry_points)
            if entry in project.table.functions
        }
        project.stats["reachable_functions"] = len(chains)
        violations: list[LintViolation] = []
        for qualname in sorted(chains):
            if _allowlisted(qualname, project.allowlist):
                continue
            function = project.table.functions[qualname]
            for node, what in self._scan(function):
                violations.append(self.violation(
                    function.module, node,
                    f"{what} in {qualname} "
                    f"(reachable via {_chain_text(chains[qualname])})",
                ))
        return violations

    # -- per-function source detectors ---------------------------------
    def _scan(self, function: FunctionSymbol):
        module = function.module
        set_names = self._set_bound_names(function.node)
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                found = self._nondeterministic_call(module, node)
                if found:
                    yield node, found
                found = self._set_conversion(node, set_names)
                if found:
                    yield node, found
            elif isinstance(node, ast.Attribute):
                found = self._numpy_global(node)
                if found:
                    yield node, found
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, set_names):
                    yield node, "iteration over an unordered set"
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if self._is_set_expr(generator.iter, set_names):
                        yield node, "comprehension over an unordered set"
                        break

    def _nondeterministic_call(self, module: ModuleSymbol,
                               node: ast.Call) -> str | None:
        func = node.func
        if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
            return None
        base, attr = func.value.id, func.attr
        # Inline wall clock (same contract as the per-file rule).
        if base == "time" and attr in _CLOCK_FUNCS:
            return f"inline wall-clock call time.{attr}()"
        if attr in _DATETIME_FUNCS and base in ("datetime", "date"):
            return f"inline wall-clock call {base}.{attr}()"
        # Unseeded stdlib random: module-level draws share hidden state.
        if (base == "random" and module.imports.get("random") == "random"
                and attr not in self._RANDOM_CONSTRUCTORS):
            return f"unseeded stdlib RNG call random.{attr}()"
        if (base, attr) in self._ENTROPY:
            return f"entropy source {base}.{attr}()"
        return None

    @staticmethod
    def _numpy_global(node: ast.Attribute) -> str | None:
        value = node.value
        if (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in _NUMPY_ALIASES
                and node.attr not in _ALLOWED_RANDOM_ATTRS):
            return f"global RNG access np.random.{node.attr}"
        return None

    # -- unordered-set iteration ---------------------------------------
    @staticmethod
    def _set_bound_names(node: ast.AST) -> set[str]:
        """Names assigned a set literal / set() / set comprehension."""
        names: set[str] = set()
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign):
                continue
            value = child.value
            is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            )
            if is_set:
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @classmethod
    def _is_set_expr(cls, node: ast.expr, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    @classmethod
    def _set_conversion(cls, node: ast.Call, set_names: set[str]) -> str | None:
        """list()/tuple() over a set keeps the arbitrary order."""
        if isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple") \
                and len(node.args) == 1 and cls._is_set_expr(node.args[0], set_names):
            return f"{node.func.id}() materializes an unordered set"
        return None


# ----------------------------------------------------------------------
# flow/lock-discipline
# ----------------------------------------------------------------------
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft", "popitem",
    "remove", "discard", "clear", "add", "update", "setdefault",
    "move_to_end", "sort", "reverse",
})


def _self_attr_of(node: ast.expr) -> str | None:
    """The first self-rooted attribute of a value chain
    (``self.X``, ``self.X[k]``, ``self.X.y`` → ``X``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        node = node.value
    return None


@dataclass
class _MethodFacts:
    """Lexical facts of one method, gathered in a single guarded walk."""

    name: str
    mutations: list = field(default_factory=list)    # (attr, held, node)
    acquisitions: list = field(default_factory=list)  # (lock, held, node)
    calls: list = field(default_factory=list)         # (method, held, node)


class _ClassLockModel:
    """Locks, aliases and per-method facts for one class."""

    def __init__(self, cls: ClassSymbol):
        self.cls = cls
        self.alias: dict[str, str] = {}      # attr -> canonical lock attr
        self.kinds: dict[str, str] = {}      # canonical -> lock|rlock|condition
        self.methods: dict[str, _MethodFacts] = {}
        self._discover_locks()
        if self.alias:
            for name, method in sorted(cls.methods.items()):
                self.methods[name] = self._walk_method(method)

    # -- lock discovery ------------------------------------------------
    @staticmethod
    def _lock_call_kind(node: ast.expr) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else ""
        return {"Lock": "lock", "RLock": "rlock",
                "Condition": "condition"}.get(name)

    def _discover_locks(self) -> None:
        conditions: list[tuple[str, str | None]] = []
        for method in self.cls.methods.values():
            for node in ast.walk(method.node):
                if isinstance(node, ast.Assign):
                    attr = None
                    for target in node.targets:
                        attr = attr or _self_attr_of(target)
                    if attr is None:
                        continue
                    kind = self._lock_call_kind(node.value)
                    if kind in ("lock", "rlock"):
                        self.alias[attr] = attr
                        self.kinds[attr] = kind
                    elif kind == "condition":
                        backing = None
                        if node.value.args:
                            backing = _self_attr_of(node.value.args[0])
                        conditions.append((attr, backing))
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        attr = _self_attr_of(item.context_expr)
                        if attr is not None and isinstance(item.context_expr,
                                                          ast.Attribute):
                            # `with self.X:` — X behaves as a lock even
                            # when constructed elsewhere (injected).
                            self.alias.setdefault(attr, attr)
                            self.kinds.setdefault(attr, "lock")
        for attr, backing in conditions:
            if backing is not None and backing in self.alias:
                self.alias[attr] = self.alias[backing]
            else:
                self.alias[attr] = attr
                self.kinds.setdefault(attr, "condition")

    def canonical(self, attr: str) -> str | None:
        return self.alias.get(attr)

    @property
    def locks(self) -> frozenset:
        return frozenset(self.alias.values())

    # -- guarded walk --------------------------------------------------
    def _walk_method(self, method: FunctionSymbol) -> _MethodFacts:
        facts = _MethodFacts(name=method.name)
        for stmt in method.node.body:
            self._walk(stmt, frozenset(), facts)
        return facts

    def _walk(self, stmt: ast.stmt, held: frozenset, facts: _MethodFacts) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                self._scan_expr(item.context_expr, held, facts)
                attr = _self_attr_of(item.context_expr)
                lock = self.canonical(attr) if attr else None
                if lock is not None and isinstance(item.context_expr, ast.Attribute):
                    facts.acquisitions.append((lock, inner, stmt))
                    inner = inner | {lock}
            for child in stmt.body:
                self._walk(child, inner, facts)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition runs later, in an unknown lock context.
            for child in stmt.body:
                self._walk(child, frozenset(), facts)
            return
        self._record_writes(stmt, held, facts)
        for field_name, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for child in value:
                    if isinstance(child, ast.stmt):
                        self._walk(child, held, facts)
                    elif isinstance(child, ast.excepthandler):
                        for handler_stmt in child.body:
                            self._walk(handler_stmt, held, facts)
                    elif isinstance(child, ast.expr):
                        self._scan_expr(child, held, facts)
            elif isinstance(value, ast.expr):
                self._scan_expr(value, held, facts)

    def _record_writes(self, stmt: ast.stmt, held: frozenset,
                       facts: _MethodFacts) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = _self_attr_of(target)
            if attr is not None:
                facts.mutations.append((attr, held, target))

    def _scan_expr(self, expr: ast.expr, held: frozenset,
                   facts: _MethodFacts) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if func.attr in self.cls.methods:
                    facts.calls.append((func.attr, held, node))
                continue
            if func.attr in _MUTATORS:
                attr = _self_attr_of(func.value)
                if attr is not None:
                    facts.mutations.append((attr, held, node))

    # -- interprocedural guard inference -------------------------------
    def entry_guards(self, externally_called: set[str]) -> dict[str, frozenset]:
        """The locks provably held at entry of each method.

        Public and externally-called methods are seeded unguarded;
        private helpers start optimistic (all locks) and are reduced by
        the meet (intersection) over every call site — the classic
        forward dataflow on the intra-class call graph.
        """
        top = self.locks

        def seeded(name: str) -> frozenset:
            public = not name.startswith("_") or (
                name.startswith("__") and name.endswith("__"))
            if public or name in externally_called or name == "__init__":
                return frozenset()
            return top

        def successors(name: str):
            facts = self.methods.get(name)
            if facts is None:
                return
            for callee, held, _node in facts.calls:
                yield held, callee

        flow: ForwardDataflow[str, frozenset] = ForwardDataflow(
            successors=successors,
            transfer=lambda entry, held: entry | held,
            join=lambda old, new: old & new,
        )
        seeds = {name: seeded(name) for name in sorted(self.methods)}
        solved = flow.solve(seeds)
        return {name: solved.get(name, top) for name in self.methods}

    def transitive_acquisitions(self) -> dict[str, frozenset]:
        """Locks each method may acquire, directly or via intra-class calls."""
        acquired = {name: frozenset(lock for lock, _h, _n in facts.acquisitions)
                    for name, facts in self.methods.items()}
        changed = True
        while changed:
            changed = False
            for name, facts in self.methods.items():
                merged = acquired[name]
                for callee, _held, _node in facts.calls:
                    merged = merged | acquired.get(callee, frozenset())
                if merged != acquired[name]:
                    acquired[name] = merged
                    changed = True
        return acquired


@register_flow_pass
class LockDisciplinePass(FlowPass):
    """Infer lock-guarded regions and flag undisciplined shared state."""

    name = "flow/lock-discipline"
    description = ("flag attributes mutated both inside and outside their "
                   "inferred lock, unguarded *_locked calls, and inconsistent "
                   "lock acquisition order")
    hint = ("mutate shared attributes only while holding the class lock; "
            "acquire multiple locks in one global order")

    def run(self, project: FlowProject) -> list[LintViolation]:
        violations: list[LintViolation] = []
        lock_classes = 0
        for qualname in sorted(project.table.classes):
            cls = project.table.classes[qualname]
            model = _ClassLockModel(cls)
            if not model.alias:
                continue
            lock_classes += 1
            violations.extend(self._check_class(project, cls, model))
        project.stats["lock_classes"] = lock_classes
        return violations

    def _externally_called(self, project: FlowProject,
                           cls: ClassSymbol) -> set[str]:
        prefix = cls.qualname + "."
        called: set[str] = set()
        for caller, sites in project.graph.edges.items():
            caller_symbol = project.table.functions[caller]
            if caller_symbol.class_name == cls.qualname:
                continue
            for site in sites:
                if site.callee.startswith(prefix):
                    called.add(site.callee[len(prefix):])
        return called

    def _check_class(self, project: FlowProject, cls: ClassSymbol,
                     model: _ClassLockModel):
        module = cls.module
        entry = model.entry_guards(self._externally_called(project, cls))
        acquired = model.transitive_acquisitions()

        # (a) attributes mutated both guarded and unguarded.
        writes: dict[str, list[tuple[frozenset, ast.AST, str]]] = {}
        for name, facts in sorted(model.methods.items()):
            base = entry[name]
            for attr, held, node in facts.mutations:
                if name == "__init__":
                    continue    # single-threaded construction
                if attr in model.alias:
                    if not isinstance(node, ast.Call):
                        yield self.violation(
                            module, node,
                            f"lock attribute self.{attr} reassigned outside "
                            f"{cls.qualname}.__init__",
                        )
                    continue
                writes.setdefault(attr, []).append((base | held, node, name))
        for attr in sorted(writes):
            sites = writes[attr]
            guarded = sorted({lock for held, _n, _m in sites for lock in held})
            if not guarded:
                continue
            lock = guarded[0]
            for held, node, method in sites:
                if not held:
                    yield self.violation(
                        module, node,
                        f"attribute self.{attr} is mutated under self.{lock} "
                        f"elsewhere but written in {cls.qualname}.{method} "
                        f"without holding it",
                    )

        # (b) *_locked helpers must be entered holding a lock.
        for name, facts in sorted(model.methods.items()):
            base = entry[name]
            for callee, held, node in facts.calls:
                if callee.endswith("_locked") and not (base | held):
                    yield self.violation(
                        module, node,
                        f"{cls.qualname}.{callee} (caller-holds-lock "
                        f"convention) called from {name} without holding "
                        f"any lock",
                    )

        # (c) acquisition order: nested pairs, re-acquisition deadlocks.
        pairs: dict[tuple[str, str], ast.AST] = {}
        for name, facts in sorted(model.methods.items()):
            base = entry[name]
            for lock, held, node in facts.acquisitions:
                effective = base | held
                if lock in effective and model.kinds.get(lock) != "rlock":
                    yield self.violation(
                        module, node,
                        f"{cls.qualname}.{name} re-acquires non-reentrant "
                        f"self.{lock} while already holding it (deadlock)",
                    )
                for outer in sorted(effective - {lock}):
                    pairs.setdefault((outer, lock), node)
            for callee, held, node in facts.calls:
                effective = base | held
                for inner in sorted(acquired.get(callee, frozenset())):
                    if inner in effective and model.kinds.get(inner) != "rlock":
                        yield self.violation(
                            module, node,
                            f"{cls.qualname}.{name} calls {callee} which "
                            f"re-acquires non-reentrant self.{inner} already "
                            f"held here (deadlock)",
                        )
                    for outer in sorted(effective - {inner}):
                        pairs.setdefault((outer, inner), node)
        for (first, second) in sorted(pairs):
            if first < second and (second, first) in pairs:
                node = pairs[(first, second)]
                yield self.violation(
                    module, node,
                    f"inconsistent lock order in {cls.qualname}: "
                    f"self.{first} -> self.{second} here but "
                    f"self.{second} -> self.{first} elsewhere "
                    f"(line {pairs[(second, first)].lineno})",
                )


# ----------------------------------------------------------------------
# flow/registry-drift
# ----------------------------------------------------------------------
@register_flow_pass
class RegistryDriftPass(FlowPass):
    """Registries must match reality: every ``FAULT_POINTS`` entry has a
    planted ``fault_point(...)`` call site in its registered module, and
    every metric name emitted through ``repro.obs`` appears in the
    documented catalog (and vice versa)."""

    name = "flow/registry-drift"
    description = ("cross-check FAULT_POINTS against planted call sites and "
                   "emitted metric names against the obs catalog")
    hint = ("plant/remove the fault point, or update "
            "repro.testing.faultpoints.FAULT_POINTS / repro.obs.catalog")

    _FAULT_EXEMPT = ("repro/testing/", "tests/")
    _METRIC_EXEMPT = ("repro/obs/", "tests/")
    _EMITTERS = ("counter", "gauge", "histogram")

    def run(self, project: FlowProject) -> list[LintViolation]:
        violations: list[LintViolation] = []
        violations.extend(self._check_fault_points(project))
        violations.extend(self._check_metrics(project))
        return violations

    # -- FAULT_POINTS --------------------------------------------------
    @staticmethod
    def _find_registry(project: FlowProject, variable: str):
        """(module, node, {literal key: literal value}) for a module-level
        dict assignment, or None."""
        for name in sorted(project.table.modules):
            module = project.table.modules[name]
            for node in module.tree.body:
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                named = any(isinstance(t, ast.Name) and t.id == variable
                            for t in targets)
                if not named or not isinstance(value, ast.Dict):
                    continue
                entries = {}
                for key, val in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                            and isinstance(val, ast.Constant) \
                            and isinstance(val.value, str):
                        entries[key.value] = (val.value, key)
                return module, entries
        return None

    def _check_fault_points(self, project: FlowProject):
        found = self._find_registry(project, "FAULT_POINTS")
        if found is None:
            return
        registry_module, entries = found
        top = registry_module.name.partition(".")[0]
        planted: dict[str, list[str]] = {}
        for name in sorted(project.table.modules):
            module = project.table.modules[name]
            if module.name.partition(".")[0] != top:
                continue
            path = module.path.replace("\\", "/")
            if any(fragment in path for fragment in self._FAULT_EXEMPT):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                named = (isinstance(func, ast.Name) and func.id == "fault_point") \
                    or (isinstance(func, ast.Attribute) and func.attr == "fault_point")
                if named and node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    planted.setdefault(node.args[0].value, []).append(path)
        for point in sorted(entries):
            fragment, key_node = entries[point]
            sites = planted.get(point, [])
            in_module = [path for path in sites if fragment in path]
            if not in_module:
                where = (f"; planted only in {', '.join(sorted(set(sites)))}"
                         if sites else "")
                yield self.violation(
                    registry_module, key_node,
                    f"registered fault point {point!r} has no planted call "
                    f"site in its module {fragment}{where}",
                )

    # -- metric catalog ------------------------------------------------
    @staticmethod
    def _catalog_sets(project: FlowProject):
        """(module, names {value: node}, templates {value: node})."""
        for name in sorted(project.table.modules):
            module = project.table.modules[name]
            names: dict[str, ast.AST] = {}
            templates: dict[str, ast.AST] = {}
            for node in module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                target_names = [t.id for t in node.targets
                                if isinstance(t, ast.Name)]
                value = node.value
                if isinstance(value, ast.Call) and value.args:
                    value = value.args[0]
                if not isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                    continue
                bucket = names if "METRIC_NAMES" in target_names else \
                    templates if "METRIC_TEMPLATES" in target_names else None
                if bucket is None:
                    continue
                for element in value.elts:
                    if isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        bucket[element.value] = element
            if names or templates:
                return module, names, templates
        return None

    @staticmethod
    def _template_of(node: ast.JoinedStr) -> str:
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                if not parts or parts[-1] != "*":
                    parts.append("*")
        return "".join(parts)

    def _check_metrics(self, project: FlowProject):
        catalog = self._catalog_sets(project)
        if catalog is None:
            return
        catalog_module, names, templates = catalog
        top = catalog_module.name.partition(".")[0]
        emitted_literals: dict[str, tuple[ModuleSymbol, ast.AST]] = {}
        emitted_templates: dict[str, tuple[ModuleSymbol, ast.AST]] = {}
        for name in sorted(project.table.modules):
            module = project.table.modules[name]
            if module.name.partition(".")[0] != top:
                continue
            path = module.path.replace("\\", "/")
            if any(fragment in path for fragment in self._METRIC_EXEMPT):
                continue
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._EMITTERS and node.args):
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    emitted_literals.setdefault(arg.value, (module, node))
                elif isinstance(arg, ast.JoinedStr):
                    emitted_templates.setdefault(
                        self._template_of(arg), (module, node))
        for value in sorted(emitted_literals):
            module, node = emitted_literals[value]
            if value not in names:
                yield self.violation(
                    module, node,
                    f"metric {value!r} is emitted but missing from the "
                    f"documented catalog ({catalog_module.name}.METRIC_NAMES)",
                )
        for value in sorted(emitted_templates):
            module, node = emitted_templates[value]
            if value not in templates:
                yield self.violation(
                    module, node,
                    f"dynamic metric pattern {value!r} is emitted but missing "
                    f"from the documented catalog "
                    f"({catalog_module.name}.METRIC_TEMPLATES)",
                )
        for value in sorted(names):
            if value not in emitted_literals:
                yield self.violation(
                    catalog_module, names[value],
                    f"catalogued metric {value!r} is never emitted",
                )
        for value in sorted(templates):
            if value not in emitted_templates:
                yield self.violation(
                    catalog_module, templates[value],
                    f"catalogued metric pattern {value!r} is never emitted",
                )
