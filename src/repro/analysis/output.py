"""Machine-readable lint output (JSON, SARIF) and baseline files.

The JSON rendering is byte-deterministic (sorted keys, stable violation
order, trailing newline) — ``scripts/smoke.sh`` diffs two consecutive
runs and a committed snapshot against it, so any nondeterminism in the
analysis surfaces as a CI failure rather than a flaky report.

Baselines record *accepted* findings so a new check can land with
existing debt ratcheted: ``repro lint --baseline FILE --write-baseline``
snapshots today's findings, and later runs with ``--baseline FILE``
fail only on findings not in the file.  Keys are ``path::rule::message``
(no line numbers — unrelated edits above a finding must not invalidate
the baseline).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .lint import LintViolation

__all__ = [
    "render_json", "render_sarif",
    "baseline_key", "load_baseline", "write_baseline", "apply_baseline",
]

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def _payload(violations: Sequence[LintViolation], files: int,
             stats: dict | None) -> dict:
    by_rule: dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    return {
        "summary": {
            "files": files,
            "violations": len(violations),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "flow": dict(sorted((stats or {}).items())),
        "violations": [
            {
                "rule": v.rule, "path": v.path.replace("\\", "/"),
                "line": v.line, "col": v.col,
                "message": v.message, "hint": v.hint,
            }
            for v in violations
        ],
    }


def render_json(violations: Sequence[LintViolation], files: int = 0,
                stats: dict | None = None) -> str:
    """Deterministic JSON report (sorted keys, trailing newline)."""
    return json.dumps(_payload(violations, files, stats),
                      indent=2, sort_keys=True) + "\n"


def render_sarif(violations: Sequence[LintViolation], files: int = 0,
                 stats: dict | None = None) -> str:
    """Minimal SARIF 2.1.0 report for code-scanning consumers."""
    from .flow import available_flow_passes
    from .lint import available_rules

    rules = [
        {"id": name, "shortDescription": {"text": description}}
        for name, description in
        sorted(set(available_rules()) | set(available_flow_passes()))
    ]
    results = [
        {
            "ruleId": v.rule,
            "level": "warning",
            "message": {"text": v.message + (f" (hint: {v.hint})" if v.hint else "")},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path.replace("\\", "/")},
                    "region": {"startLine": v.line, "startColumn": v.col + 1},
                },
            }],
        }
        for v in violations
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def baseline_key(violation: LintViolation) -> str:
    """Stable identity of a finding across unrelated edits."""
    path = violation.path.replace("\\", "/")
    return f"{path}::{violation.rule}::{violation.message}"


def write_baseline(violations: Sequence[LintViolation],
                   path: str | Path) -> int:
    """Snapshot findings as the accepted baseline; returns the count."""
    keys = sorted({baseline_key(v) for v in violations})
    payload = {"version": 1, "findings": keys}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    return len(keys)


def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file; raises OSError / ValueError on bad input."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != 1 \
            or not isinstance(payload.get("findings"), list):
        raise ValueError(f"{path}: not a v1 lint baseline file")
    return set(payload["findings"])


def apply_baseline(violations: Sequence[LintViolation],
                   baseline: set[str]) -> tuple[list[LintViolation], int]:
    """Drop findings present in the baseline; returns (kept, suppressed)."""
    kept = [v for v in violations if baseline_key(v) not in baseline]
    return kept, len(violations) - len(kept)
