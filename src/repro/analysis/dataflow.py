"""A small forward dataflow engine (worklist fixpoint over any graph).

The interprocedural passes need two fixpoint computations that are the
same algorithm with different lattices:

* *reachability with witness chains* over the call graph (determinism
  pass) — facts grow monotonically from the entries;
* *held-lock inference* for private methods (lock-discipline pass) —
  the entry fact of a method is the **meet** (set intersection) of the
  locks held at every call site, iterated until stable.

:class:`ForwardDataflow` implements the shared machinery: seed facts,
propagate along edges through a ``transfer`` function, combine at join
points with ``join``, revisit successors whose fact changed.  The
worklist is kept sorted so iteration order — and therefore any
tie-breaking inside ``join`` — is deterministic, which the byte-stable
JSON reports depend on.

Facts must be immutable values with ``==`` (frozensets, tuples).
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Mapping, TypeVar

__all__ = ["ForwardDataflow", "MAX_ITERATIONS"]

Node = TypeVar("Node", bound=Hashable)
Fact = TypeVar("Fact")

# Safety valve: no lattice here is deep, so hitting this means a
# non-monotonic transfer/join pair (a bug in the calling pass).
MAX_ITERATIONS = 100_000


class ForwardDataflow(Generic[Node, Fact]):
    """Generic forward worklist solver.

    ``successors(node)`` yields ``(edge, next_node)`` pairs;
    ``transfer(fact, edge)`` maps the fact at the node across the edge;
    ``join(old, new)`` combines an incoming fact with the fact already
    stored at the target (return ``old`` unchanged — by identity or
    equality — to stop propagation).
    """

    def __init__(self,
                 successors: Callable[[Node], Iterable[tuple[object, Node]]],
                 transfer: Callable[[Fact, object], Fact],
                 join: Callable[[Fact, Fact], Fact]):
        self.successors = successors
        self.transfer = transfer
        self.join = join

    def solve(self, seeds: Mapping[Node, Fact]) -> dict[Node, Fact]:
        """Run to fixpoint from ``seeds``; returns the fact per visited node."""
        facts: dict[Node, Fact] = dict(seeds)
        worklist = sorted(facts, key=str)
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > MAX_ITERATIONS:
                raise RuntimeError(
                    "dataflow failed to converge (non-monotonic transfer/join?)"
                )
            node = worklist.pop(0)
            fact = facts[node]
            changed: list[Node] = []
            for edge, target in self.successors(node):
                incoming = self.transfer(fact, edge)
                if target not in facts:
                    facts[target] = incoming
                    changed.append(target)
                    continue
                merged = self.join(facts[target], incoming)
                if merged != facts[target]:
                    facts[target] = merged
                    changed.append(target)
            if changed:
                pending = set(worklist)
                worklist.extend(node for node in sorted(changed, key=str)
                                if node not in pending)
        return facts
