"""``repro.analysis`` — static correctness tooling for the reproduction.

Two layers, one goal: catch the silent-bug classes that invalidate
cross-system transfer results *before* any epoch runs.

* :mod:`repro.analysis.audit` — given any :class:`repro.nn.Module`, run
  symbolic shape propagation plus a one-step forward/backward probe and
  report dead parameters, unregistered submodules, missing
  ``super().__init__()`` calls, broken autograd edges (ops routed through
  ``.data``/``detach()``) and non-finite values as a structured
  :class:`AuditReport`.
* :mod:`repro.analysis.lint` — an AST rule engine enforcing repo
  invariants (injected RNGs and clocks, no mutable defaults, no blanket
  excepts, Module subclass conventions) with per-line/per-file
  suppression comments and a registry for adding rules.

Both are exposed as CLI subcommands (``repro audit``, ``repro lint``)
and gated in CI by ``scripts/lint.sh`` and the self-hosting tests under
``tests/analysis/``.
"""

from .findings import AuditReport, Finding, Severity
from .audit import (
    audit_baseline, audit_logsynergy, audit_model, audit_spec, build_probe,
    probe_data,
)
from .lint import (
    LintRule, LintViolation, RULES, SourceFile, available_rules,
    format_violations, lint_paths, lint_source, register_rule,
)
from . import shapes

__all__ = [
    "Severity", "Finding", "AuditReport",
    "audit_model", "audit_baseline", "audit_logsynergy", "audit_spec",
    "build_probe", "probe_data",
    "LintRule", "LintViolation", "RULES", "SourceFile", "available_rules",
    "format_violations", "lint_paths", "lint_source", "register_rule",
    "shapes",
]
