"""``repro.analysis`` — static correctness tooling for the reproduction.

Three layers, one goal: catch the silent-bug classes that invalidate
cross-system transfer results *before* any epoch runs.

* :mod:`repro.analysis.audit` — given any :class:`repro.nn.Module`, run
  symbolic shape propagation plus a one-step forward/backward probe and
  report dead parameters, unregistered submodules, missing
  ``super().__init__()`` calls, broken autograd edges (ops routed through
  ``.data``/``detach()``) and non-finite values as a structured
  :class:`AuditReport`.
* :mod:`repro.analysis.lint` — an AST rule engine enforcing repo
  invariants (injected RNGs and clocks, no mutable defaults, no blanket
  excepts, Module subclass conventions) with per-line/per-file
  suppression comments and a registry for adding rules.
* :mod:`repro.analysis.flow` — whole-program passes over a project
  symbol table (:mod:`.symbols`), call graph (:mod:`.callgraph`) and
  forward dataflow engine (:mod:`.dataflow`): determinism of everything
  reachable from the replay/serve/fuzz entry points, lock discipline in
  the threaded runtime, and registry/catalog drift.  Findings live in
  the ``flow/`` rule namespace, with JSON/SARIF output and a baseline
  file (:mod:`.output`) for the CI gate.

Both are exposed as CLI subcommands (``repro audit``, ``repro lint``)
and gated in CI by ``scripts/lint.sh`` and the self-hosting tests under
``tests/analysis/``.
"""

from .findings import AuditReport, Finding, Severity
from .audit import (
    audit_baseline, audit_logsynergy, audit_model, audit_spec, build_probe,
    probe_data,
)
from .lint import (
    DEFAULT_EXEMPTIONS, LintReport, LintRule, LintViolation, RULES,
    SourceFile, available_rules, format_violations, lint_paths, lint_project,
    lint_source, register_rule,
)
from .flow import (
    DEFAULT_ENTRY_POINTS, FLOW_PASSES, FlowPass, available_flow_passes,
    register_flow_pass, run_flow_passes,
)
from .output import (
    apply_baseline, load_baseline, render_json, render_sarif, write_baseline,
)
from . import shapes

__all__ = [
    "Severity", "Finding", "AuditReport",
    "audit_model", "audit_baseline", "audit_logsynergy", "audit_spec",
    "build_probe", "probe_data",
    "LintRule", "LintViolation", "LintReport", "RULES", "SourceFile",
    "available_rules", "format_violations", "lint_paths", "lint_project",
    "lint_source", "register_rule", "DEFAULT_EXEMPTIONS",
    "FlowPass", "FLOW_PASSES", "DEFAULT_ENTRY_POINTS",
    "available_flow_passes", "register_flow_pass", "run_flow_passes",
    "render_json", "render_sarif",
    "load_baseline", "write_baseline", "apply_baseline",
    "shapes",
]
