"""Symbolic shape propagation through ``repro.nn`` module trees.

Shapes are tuples whose entries are either concrete ``int`` dimensions or
symbolic names (``"B"`` for batch, ``"T"`` for sequence length).  A
handler per layer type checks the incoming shape against the layer's
metadata (``in_features``, ``d_model``, …) and produces the outgoing
shape, so mismatches between adjacent layers surface *before* any
forward pass runs — the class of bug that otherwise explodes deep inside
training with an opaque numpy broadcasting error.

Handlers are registered in a type-keyed table; adding support for a new
layer is one :func:`shape_handler`-decorated function.
"""

from __future__ import annotations

from typing import Callable, Iterator, Union

from ..nn import (
    BiLSTM, Dropout, Embedding, GELU, GRU, GradientReversal, LIFLayer, LSTM,
    LayerNorm, Linear, Module, MultiHeadAttention, PositionalEncoding, ReLU,
    Sequential, Sigmoid, Tanh, TransformerEncoder, TransformerEncoderLayer,
)
from .findings import Finding, Severity

__all__ = [
    "Dim", "Shape", "shape_handler", "propagate", "symbolic_input",
    "format_shape", "broadcast_shapes",
]

Dim = Union[int, str]
Shape = tuple  # tuple[Dim, ...]

_BATCH, _SEQ = "B", "T"

_HANDLERS: dict[type, Callable] = {}


def shape_handler(*types: type):
    """Register a propagation handler for one or more module types.

    A handler has signature ``(module, shape, path) -> (Shape | None,
    list[Finding])`` and should return ``None`` as the shape when it
    cannot determine the output.
    """

    def decorator(fn):
        for module_type in types:
            _HANDLERS[module_type] = fn
        return fn

    return decorator


def format_shape(shape: Shape) -> str:
    """Render ``(B, 10, 64)``-style shape strings."""
    return "(" + ", ".join(str(d) for d in shape) + ")"


def broadcast_shapes(left: Shape, right: Shape,
                     path: str = "") -> tuple[Shape | None, list]:
    """Numpy-style broadcasting over symbolic shapes.

    Shapes are right-aligned; a dimension of ``1`` broadcasts, equal
    dimensions (including equal symbols and zero-size dims) pass
    through, and a symbolic dimension is compatible with anything — the
    result keeps the more specific side (the concrete dim, or the
    symbol when paired with ``1``).  Two unequal concrete dims (e.g.
    ``3`` vs ``4``, or ``0`` vs ``5``) are incompatible: the result is
    ``None`` plus an ERROR finding, mirroring the runtime failure.
    Rank-0 ``()`` broadcasts against any shape.
    """
    result: list[Dim] = []
    for offset in range(1, max(len(left), len(right)) + 1):
        a = left[-offset] if offset <= len(left) else 1
        b = right[-offset] if offset <= len(right) else 1
        if a == b:
            result.append(a)
        elif a == 1:
            result.append(b)
        elif b == 1:
            result.append(a)
        elif isinstance(a, str):
            result.append(b)    # symbol is compatible; keep the concrete dim
        elif isinstance(b, str):
            result.append(a)
        else:
            return None, [Finding(
                code="shape-broadcast",
                severity=Severity.ERROR,
                path=path or "broadcast",
                message=(f"shapes {format_shape(left)} and "
                         f"{format_shape(right)} are not broadcast-compatible "
                         f"(dim {a} vs {b})"),
                hint="reshape one operand or fix the layer wiring",
            )]
    return tuple(reversed(result)), []


def _mismatch(path: str, module: Module, shape: Shape, expected: int,
              what: str) -> Finding:
    return Finding(
        code="shape-mismatch",
        severity=Severity.ERROR,
        path=path or type(module).__name__,
        message=(
            f"{type(module).__name__} expects {what}={expected} but incoming "
            f"shape is {format_shape(shape)}"
        ),
        hint="adjacent layer dimensions disagree; check the layer wiring",
    )


def _check_last(module: Module, shape: Shape, expected: int, path: str,
                what: str) -> list[Finding]:
    if not shape:
        return [_mismatch(path, module, shape, expected, what)]
    last = shape[-1]
    if isinstance(last, int) and last != expected:
        return [_mismatch(path, module, shape, expected, what)]
    return []


# ----------------------------------------------------------------------
# Handlers for the built-in layer vocabulary
# ----------------------------------------------------------------------
@shape_handler(Linear)
def _linear(module: Linear, shape: Shape, path: str):
    findings = _check_last(module, shape, module.in_features, path, "in_features")
    if findings:
        return None, findings
    return shape[:-1] + (module.out_features,), []


@shape_handler(LayerNorm)
def _layer_norm(module: LayerNorm, shape: Shape, path: str):
    findings = _check_last(module, shape, module.normalized_dim, path, "normalized_dim")
    return (None if findings else shape), findings


@shape_handler(ReLU, Tanh, Sigmoid, GELU, Dropout, GradientReversal)
def _identity(module: Module, shape: Shape, path: str):
    return shape, []


@shape_handler(PositionalEncoding)
def _positional(module: PositionalEncoding, shape: Shape, path: str):
    if len(shape) >= 2 and isinstance(shape[1], int) and shape[1] > module.max_len:
        return None, [Finding(
            code="shape-mismatch",
            severity=Severity.ERROR,
            path=path or "PositionalEncoding",
            message=f"sequence length {shape[1]} exceeds max_len {module.max_len}",
            hint="raise max_len or shorten the window",
        )]
    return shape, []


@shape_handler(Embedding)
def _embedding(module: Embedding, shape: Shape, path: str):
    return shape + (module.embedding_dim,), []


@shape_handler(MultiHeadAttention)
def _attention(module: MultiHeadAttention, shape: Shape, path: str):
    findings = _check_last(module, shape, module.d_model, path, "d_model")
    return (None if findings else shape), findings


@shape_handler(TransformerEncoderLayer)
def _encoder_layer(module: TransformerEncoderLayer, shape: Shape, path: str):
    findings = _check_last(module, shape, module.attention.d_model, path, "d_model")
    return (None if findings else shape), findings


@shape_handler(TransformerEncoder)
def _encoder(module: TransformerEncoder, shape: Shape, path: str):
    findings = _check_last(module, shape, module.d_model, path, "d_model")
    if not findings and len(shape) >= 2:
        _, positional_findings = _positional(module.positional, shape,
                                             f"{path}.positional" if path else "positional")
        findings = positional_findings
    return (None if findings else shape), findings


def _recurrent_input_size(module: Module) -> int:
    return module.cells[0].input_size


@shape_handler(LSTM, GRU)
def _recurrent(module: Module, shape: Shape, path: str):
    expected = _recurrent_input_size(module)
    findings = _check_last(module, shape, expected, path, "input_size")
    if not findings and len(shape) != 3:
        findings = [_mismatch(path, module, shape, expected, "rank-3 input_size")]
    if findings:
        return None, findings
    return (shape[0], shape[1], module.hidden_size), []


@shape_handler(BiLSTM)
def _bilstm(module: BiLSTM, shape: Shape, path: str):
    expected = _recurrent_input_size(module.forward_lstm)
    findings = _check_last(module, shape, expected, path, "input_size")
    if not findings and len(shape) != 3:
        findings = [_mismatch(path, module, shape, expected, "rank-3 input_size")]
    if findings:
        return None, findings
    return (shape[0], shape[1], 2 * module.hidden_size), []


@shape_handler(LIFLayer)
def _lif(module: LIFLayer, shape: Shape, path: str):
    expected = module.projection.in_features
    findings = _check_last(module, shape, expected, path, "input_size")
    if findings:
        return None, findings
    return (shape[0], shape[1], module.hidden_size), []


@shape_handler(Sequential)
def _sequential(module: Sequential, shape: Shape, path: str):
    findings: list[Finding] = []
    current: Shape | None = shape
    for index, layer in enumerate(module.layers):
        child_path = f"{path}.layer{index}" if path else f"layer{index}"
        current, child_findings = propagate(layer, current, path=child_path)
        findings.extend(child_findings)
        if current is None:
            break
    return current, findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _lookup(module: Module) -> Callable | None:
    handler = _HANDLERS.get(type(module))
    if handler is not None:
        return handler
    for base in type(module).__mro__[1:]:
        if base in _HANDLERS:
            return _HANDLERS[base]
    return None


def propagate(module: Module, shape: Shape | None,
              path: str = "") -> tuple[Shape | None, list[Finding]]:
    """Push a symbolic shape through ``module``.

    Returns ``(output_shape, findings)``; the shape is ``None`` when the
    module type has no registered handler or a mismatch made the output
    undefined.
    """
    if shape is None:
        return None, []
    handler = _lookup(module)
    if handler is None:
        return None, [Finding(
            code="shape-unknown",
            severity=Severity.INFO,
            path=path or type(module).__name__,
            message=f"no symbolic shape rule for {type(module).__name__}",
            hint="register one with repro.analysis.shapes.shape_handler",
        )]
    return handler(module, shape, path)


def symbolic_input(module: Module) -> Shape | None:
    """Infer a symbolic input shape for a module, if its type allows it."""
    if isinstance(module, Linear):
        return (_BATCH, module.in_features)
    if isinstance(module, LayerNorm):
        return (_BATCH, module.normalized_dim)
    if isinstance(module, (MultiHeadAttention, TransformerEncoderLayer)):
        d_model = (module.d_model if isinstance(module, MultiHeadAttention)
                   else module.attention.d_model)
        return (_BATCH, _SEQ, d_model)
    if isinstance(module, TransformerEncoder):
        return (_BATCH, _SEQ, module.d_model)
    if isinstance(module, (LSTM, GRU)):
        return (_BATCH, _SEQ, _recurrent_input_size(module))
    if isinstance(module, BiLSTM):
        return (_BATCH, _SEQ, _recurrent_input_size(module.forward_lstm))
    if isinstance(module, LIFLayer):
        return (_BATCH, _SEQ, module.projection.in_features)
    if isinstance(module, Embedding):
        return (_BATCH, _SEQ)
    if isinstance(module, Sequential):
        for layer in module.layers:
            inferred = symbolic_input(layer)
            if inferred is not None:
                return inferred
        return None
    return None


def iter_handlers() -> Iterator[tuple[str, str]]:
    """(type name, handler name) pairs, for introspection/tests."""
    for module_type, handler in _HANDLERS.items():
        yield module_type.__name__, handler.__name__
