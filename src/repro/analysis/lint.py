"""AST-based project linter enforcing repo invariants.

The engine is deliberately small: a rule is an ``ast.NodeVisitor``
subclass registered with :func:`register_rule`; the engine parses each
file once, runs every enabled rule over the tree, and filters the
results through suppression comments.  Adding a rule is ~20 lines (see
:mod:`repro.analysis.rules` for the built-ins).

Suppression syntax::

    something_noisy()          # lint: disable=wall-clock-call
    legacy_helper()            # lint: disable            (all rules, this line)
    # lint: disable-file=blanket-except                   (whole file, one rule)
    # lint: disable-file                                  (whole file, all rules)

The CI gate (``scripts/lint.sh`` / ``repro lint src``) requires the
repo's own tree to lint clean, so every rule must either hold globally
or be suppressed with an explicit, reviewable comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..obs import get_registry

__all__ = [
    "LintViolation", "LintRule", "register_rule", "available_rules",
    "SourceFile", "LintReport", "lint_source", "lint_paths", "lint_project",
    "format_violations", "DEFAULT_EXEMPTIONS",
]

# Rule names may carry a namespace ("flow/determinism"), so the
# suppression syntax accepts "/" inside names.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable-file|disable)(?:=(?P<rules>[\w,/-]+))?"
)

# Per-directory rule exemptions for trees that legitimately break a rule:
# benchmarks measure wall-clock time by design.  Keys are path fragments
# (POSIX separators), values are exempted rule names.
DEFAULT_EXEMPTIONS: dict[str, frozenset[str]] = {
    "benchmarks/": frozenset({"wall-clock-call"}),
}


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """``path:line:col: [rule] message`` rendering."""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}{hint}"


class SourceFile:
    """A parsed source file plus its suppression directives."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self._line_disables: dict[int, set[str] | None] = {}
        self._file_disables: set[str] = set()
        self._file_all = False
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            names = set(rules.split(",")) if rules else None
            if match.group("scope") == "disable-file":
                if names is None:
                    self._file_all = True
                else:
                    self._file_disables.update(names)
            else:
                self._line_disables[number] = names

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether a rule is disabled at a line (or file-wide)."""
        if self._file_all or rule in self._file_disables:
            return True
        if line in self._line_disables:
            names = self._line_disables[line]
            return names is None or rule in names
        return False


class LintRule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``name``/``description``/``hint``, implement
    ``visit_*`` methods, and call :meth:`report` on offending nodes.
    """

    name = ""
    description = ""
    hint = ""

    def __init__(self, source: SourceFile):
        self.source = source
        self.violations: list[LintViolation] = []

    def run(self, tree: ast.AST) -> list[LintViolation]:
        """Collect this rule's violations over a parsed tree."""
        self.visit(tree)
        return self.violations

    def report(self, node: ast.AST, message: str, hint: str | None = None) -> None:
        """Record a violation anchored at ``node``."""
        self.violations.append(LintViolation(
            rule=self.name,
            path=self.source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        ))


RULES: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a rule name")
    if cls.name in RULES:
        raise ValueError(f"duplicate lint rule name {cls.name!r}")
    RULES[cls.name] = cls
    return cls


def available_rules() -> list[tuple[str, str]]:
    """(name, description) for every registered rule, sorted by name."""
    _ensure_builtin_rules()
    return sorted((name, cls.description) for name, cls in RULES.items())


def _ensure_builtin_rules() -> None:
    from . import rules as _builtin  # noqa: F401  (import registers the rules)


def _select_rules(select: Iterable[str] | None) -> list[type[LintRule]]:
    _ensure_builtin_rules()
    if select is None:
        return list(RULES.values())
    chosen = []
    for name in select:
        if name not in RULES:
            raise KeyError(f"unknown lint rule {name!r}; "
                           f"available: {', '.join(sorted(RULES))}")
        chosen.append(RULES[name])
    return chosen


def lint_source(text: str, path: str = "<string>",
                select: Iterable[str] | None = None) -> list[LintViolation]:
    """Lint one source string; returns violations sorted by location."""
    source = SourceFile(path, text)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [LintViolation(
            rule="syntax-error", path=path, line=exc.lineno or 1,
            col=exc.offset or 0, message=f"file does not parse: {exc.msg}",
        )]
    violations: list[LintViolation] = []
    for rule_cls in _select_rules(select):
        for violation in rule_cls(source).run(tree):
            if not source.suppressed(violation.line, violation.rule):
                violations.append(violation)
    return sorted(violations, key=lambda v: (v.line, v.col, v.rule))


def _python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            ))
        elif entry.is_file():
            files.append(entry)
        else:
            raise FileNotFoundError(f"path does not exist: {entry}")
    return files


def _split_select(select: Iterable[str] | None):
    """Partition a select list into (ast_rules, flow_passes).

    Flow pass names carry the ``flow/`` namespace, so any selector
    containing ``/`` routes to the interprocedural passes (wildcards
    like ``flow/*`` included).  ``None`` means "everything" on both
    sides; an explicit select that names only one side disables the
    other entirely.
    """
    if select is None:
        return None, None
    ast_names: list[str] = []
    flow_names: list[str] = []
    for name in select:
        (flow_names if "/" in name else ast_names).append(name)
    return ast_names, flow_names


def _exempted(violation: LintViolation,
              exemptions: dict[str, frozenset[str]]) -> bool:
    posix = violation.path.replace("\\", "/")
    return any(fragment in posix and violation.rule in rules
               for fragment, rules in exemptions.items())


@dataclass
class LintReport:
    """Everything one lint run produced, ready for any output format."""

    violations: list[LintViolation]
    files: int
    flow_stats: dict


def lint_project(paths: Sequence[str | Path],
                 select: Iterable[str] | None = None,
                 exemptions: dict[str, frozenset[str]] | None = None,
                 ) -> LintReport:
    """Lint files/directories with both the per-file AST rules and the
    whole-program ``flow/*`` passes, sharing one parse per file.

    Violations are filtered through suppression comments and the
    per-directory ``exemptions`` map, then stable-sorted by
    (path, line, col, rule) so output is byte-reproducible.
    """
    ast_select, flow_select = _split_select(select)
    if exemptions is None:
        exemptions = DEFAULT_EXEMPTIONS
    files = _python_files(paths)
    violations: list[LintViolation] = []
    parsed: list[tuple[str, str, ast.Module]] = []
    for file_path in files:
        text = file_path.read_text(encoding="utf-8")
        path = str(file_path)
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            violations.append(LintViolation(
                rule="syntax-error", path=path, line=exc.lineno or 1,
                col=exc.offset or 0, message=f"file does not parse: {exc.msg}",
            ))
            continue
        parsed.append((path, text, tree))
        if ast_select is None or ast_select:
            source = SourceFile(path, text)
            for rule_cls in _select_rules(ast_select):
                for violation in rule_cls(source).run(tree):
                    if not source.suppressed(violation.line, violation.rule):
                        violations.append(violation)
    flow_stats: dict = {}
    if flow_select is None or flow_select:
        from .flow import run_flow_passes

        flow_violations, flow_stats = run_flow_passes(parsed, select=flow_select)
        violations.extend(flow_violations)
    violations = [v for v in violations if not _exempted(v, exemptions)]
    violations.sort(key=lambda v: (v.path.replace("\\", "/"), v.line,
                                   v.col, v.rule))
    registry = get_registry()
    registry.counter("analysis.lint.files").inc(len(files))
    registry.counter("analysis.lint.violations").inc(len(violations))
    return LintReport(violations=violations, files=len(files),
                      flow_stats=flow_stats)


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None) -> list[LintViolation]:
    """Lint files and directories (recursively); returns all violations."""
    return lint_project(paths, select=select).violations


def format_violations(violations: Sequence[LintViolation]) -> str:
    """Render violations one per line, with a trailing count."""
    lines = [violation.format() for violation in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun}")
    return "\n".join(lines)
