"""Import/call graph over a :class:`~repro.analysis.symbols.SymbolTable`.

Edges are resolved best-effort and *over-approximately* — for a checker
that must prove properties of everything reachable from an entry point,
an extra edge costs a little precision while a missing edge costs
soundness.  Resolution strategy, in order:

1. ``name(...)`` — module-local function/class (or an imported one),
   through the symbol table's alias/re-export resolution.  Instantiating
   a project class adds an edge to its ``__init__``.
2. ``self.method(...)`` — the enclosing class and its project bases.
3. ``a.b.c(...)`` — resolved as a dotted name (imported module attr,
   ``Class.method``, …).
4. ``obj.method(...)`` with an opaque receiver — linked to *every*
   project method of that name (capped at :data:`AMBIG_LIMIT` targets;
   beyond the cap the name is so generic that linking it would connect
   the whole program).

The graph keeps every call site (caller, callee, location), so passes
can report *how* a flagged function is reachable, not just that it is.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .symbols import ClassSymbol, FunctionSymbol, SymbolTable, _dotted

__all__ = ["AMBIG_LIMIT", "CallSite", "CallGraph"]

# Max distinct methods an opaque-receiver call may fan out to before the
# name is considered too generic to link (e.g. ``.get``/``.items``).
AMBIG_LIMIT = 8


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its source location."""

    caller: str
    callee: str
    path: str
    line: int
    col: int


class CallGraph:
    """Directed call graph with per-edge source locations."""

    def __init__(self, table: SymbolTable):
        self.table = table
        self.edges: dict[str, list[CallSite]] = {}
        self.unresolved: dict[str, int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for qualname in sorted(self.table.functions):
            function = self.table.functions[qualname]
            self.edges[qualname] = self._edges_of(function)

    def _edges_of(self, function: FunctionSymbol) -> list[CallSite]:
        sites: list[CallSite] = []
        seen: set[tuple[str, int, int]] = set()
        owner = (self.table.classes.get(function.class_name)
                 if function.class_name else None)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self._resolve_call(function, owner, node):
                key = (callee, node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                sites.append(CallSite(
                    caller=function.qualname, callee=callee,
                    path=function.module.path,
                    line=node.lineno, col=node.col_offset,
                ))
        return sites

    def _targets_for(self, resolved: str) -> list[str]:
        """Map a resolved symbol to function-level targets."""
        if resolved in self.table.functions:
            return [resolved]
        if resolved in self.table.classes:
            init = self.table.class_method(resolved, "__init__")
            return [init.qualname] if init is not None else []
        return []

    def _resolve_call(self, function: FunctionSymbol,
                      owner: ClassSymbol | None,
                      node: ast.Call) -> list[str]:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.table.resolve(function.module, func.id)
            if resolved:
                return self._targets_for(resolved)
            self._miss(func.id)
            return []
        if not isinstance(func, ast.Attribute):
            return []   # lambdas, subscripted callables, …
        dotted = _dotted(func)
        if dotted is not None:
            head = dotted.partition(".")[0]
            if head == "self" and owner is not None:
                rest = dotted.split(".")[1:]
                if len(rest) == 1:
                    method = self.table.class_method(owner.qualname, rest[0])
                    if method is not None:
                        return [method.qualname]
                # self.attr.method(...): the receiver is an attribute of
                # unknown type — fall through to the by-name fallback.
            else:
                resolved = self.table.resolve(function.module, dotted)
                if resolved:
                    return self._targets_for(resolved)
        # Opaque receiver: link every project method with this name.
        candidates = self.table.methods_by_name.get(func.attr, [])
        if 0 < len(candidates) <= AMBIG_LIMIT:
            return [symbol.qualname for symbol in candidates]
        if candidates:
            self._miss(f".{func.attr}")
        return []

    def _miss(self, name: str) -> None:
        self.unresolved[name] = self.unresolved.get(name, 0) + 1

    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    def reachable(self, entries: list[str]) -> dict[str, tuple[str, ...]]:
        """Every function reachable from ``entries``, mapped to one
        witness call chain (entry → … → function).  The chain lattice
        (shorter wins, then lexicographic) is solved on the shared
        :class:`~repro.analysis.dataflow.ForwardDataflow` engine, so the
        witness each function reports is deterministic.  Entries not
        present in the table are ignored.
        """
        from .dataflow import ForwardDataflow

        def successors(node: str):
            for site in self.edges.get(node, []):
                yield site.callee, site.callee

        flow: ForwardDataflow[str, tuple[str, ...]] = ForwardDataflow(
            successors=successors,
            transfer=lambda chain, callee: chain + (callee,),
            join=lambda old, new: min(old, new, key=lambda c: (len(c), c)),
        )
        seeds = {entry: (entry,) for entry in sorted(entries)
                 if entry in self.table.functions}
        return flow.solve(seeds)

    def edge_count(self) -> int:
        return sum(len(sites) for sites in self.edges.values())

    def stats(self) -> dict[str, int]:
        """Deterministic size summary (for reports and snapshots)."""
        return {
            "call_edges": self.edge_count(),
            "unresolved_names": len(self.unresolved),
        }
