"""Built-in lint rules enforcing this repo's invariants.

Each rule documents *why* the invariant exists; the linter's job is to
keep the properties the reproduction depends on (determinism, injectable
clocks and RNGs, correctly registered modules) from regressing silently.
"""

from __future__ import annotations

import ast

from .lint import LintRule, register_rule

__all__ = [
    "GlobalNumpyRandomRule", "WallClockRule", "MutableDefaultRule",
    "BlanketExceptRule", "SilentExceptRule", "ModuleSuperInitRule",
    "ForwardConventionsRule", "DirectThreadRule", "PerTimestepLoopRule",
    "FaultPointAllowlistRule", "DirectLLMCallRule",
    "DetectorOutsideRegistryRule", "UnmanagedCheckpointWriteRule",
]

_NUMPY_ALIASES = {"np", "numpy"}
# Constructing generators/annotations is fine; calling the legacy global
# RNG (np.random.rand/seed/...) is what breaks run-to-run determinism.
_ALLOWED_RANDOM_ATTRS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "Philox", "RandomState",
}
_CLOCK_FUNCS = {"time", "perf_counter", "monotonic", "process_time", "clock"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}


@register_rule
class GlobalNumpyRandomRule(LintRule):
    """Experiments must be reseedable: every random draw goes through an
    injected ``np.random.Generator``, never the process-global RNG."""

    name = "global-numpy-random"
    description = "forbid np.random.* global-RNG access (inject a Generator)"
    hint = "accept rng: np.random.Generator and use np.random.default_rng(seed)"

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in _NUMPY_ALIASES
                and node.attr not in _ALLOWED_RANDOM_ATTRS):
            self.report(node, f"global RNG access np.random.{node.attr}")
        self.generic_visit(node)


@register_rule
class WallClockRule(LintRule):
    """Hot paths must be clock-injectable (see the ``repro.obs`` design):
    referencing ``time.perf_counter`` as a default is fine, *calling* the
    wall clock inline is not."""

    name = "wall-clock-call"
    description = "forbid inline wall-clock calls (inject a clock instead)"
    hint = "take clock: Callable[[], float] = time.perf_counter and call that"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if (isinstance(owner, ast.Name) and owner.id == "time"
                    and func.attr in _CLOCK_FUNCS):
                self.report(node, f"inline wall-clock call time.{func.attr}()")
            elif func.attr in _DATETIME_FUNCS:
                base = owner
                if isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in ("datetime", "date"):
                    self.report(node, f"inline wall-clock call {func.attr}()")
        self.generic_visit(node)


@register_rule
class MutableDefaultRule(LintRule):
    """Mutable default arguments alias state across calls — a classic
    source of cross-experiment contamination."""

    name = "mutable-default-arg"
    description = "forbid list/dict/set literals (or calls) as argument defaults"
    hint = "default to None and create the container inside the function"

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict"}

    def _is_mutable(self, node: ast.AST | None) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else ""
            return name in self._MUTABLE_CALLS
        return False

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(default, "mutable default argument")
        self.generic_visit(node)

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check
    visit_Lambda = _check


@register_rule
class BlanketExceptRule(LintRule):
    """Blanket handlers hide the exact silent-corruption bugs the auditor
    exists to catch; handle specific exceptions or re-raise."""

    name = "blanket-except"
    description = "forbid bare except and except Exception/BaseException"
    hint = "catch the specific exception types, or re-raise with a bare raise"

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(stmt, ast.Raise) and stmt.exc is None
                   for stmt in ast.walk(handler))

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare except:")
        elif isinstance(node.type, ast.Name) and \
                node.type.id in ("Exception", "BaseException") and \
                not self._reraises(node):
            self.report(node, f"blanket except {node.type.id} without re-raise")
        self.generic_visit(node)


@register_rule
class SilentExceptRule(LintRule):
    """The partner of ``blanket-except``: even a *specific* exception type
    handled by ``pass`` alone erases the failure — recovery paths must
    leave evidence (a counter, a log, a fallback value), or the fault
    harness can prove nothing about them.

    Handlers already flagged by ``blanket-except`` (bare ``except:``,
    ``except Exception``/``BaseException``) are skipped here so one bad
    handler yields one finding, not two.
    """

    name = "silent-except"
    description = "forbid except blocks whose body does nothing (swallowed errors)"
    hint = "count/log the failure or use contextlib.suppress at the call site"

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        return isinstance(stmt, ast.Pass) or (
            isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)
        )

    @staticmethod
    def _blanket(node: ast.ExceptHandler) -> bool:
        return node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if not self._blanket(node) and \
                all(self._is_noop(stmt) for stmt in node.body):
            self.report(node, "except block silently swallows the error")
        self.generic_visit(node)


@register_rule
class FaultPointAllowlistRule(LintRule):
    """Fault points are reviewed hooks, not a free-for-all: every
    ``fault_point(...)`` call must use a name registered in
    :data:`repro.testing.faultpoints.FAULT_POINTS`, planted in the one
    module that registration names.  A hook in unreviewed code is an
    injection surface nobody audits."""

    name = "fault-point-outside-allowlist"
    description = "fault_point(...) must use a registered name inside its registered module"
    hint = "register the point in repro.testing.faultpoints.FAULT_POINTS (name -> hosting module)"

    # The harness itself (benchmarks, the injector) and tests may touch
    # hooks freely; the allowlist binds production modules only.
    _EXEMPT_FRAGMENTS = ("repro/testing/", "tests/")

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._EXEMPT_FRAGMENTS)

    @staticmethod
    def _registry() -> dict[str, str]:
        from ..testing.faultpoints import FAULT_POINTS

        return FAULT_POINTS

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        named = (isinstance(func, ast.Name) and func.id == "fault_point") or (
            isinstance(func, ast.Attribute) and func.attr == "fault_point"
        )
        if named and not self._exempt():
            first = node.args[0] if node.args else None
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                self.report(node, "fault_point name must be a string literal")
            else:
                registered = self._registry().get(first.value)
                path = self.source.path.replace("\\", "/")
                if registered is None:
                    self.report(node, f"unregistered fault point {first.value!r}")
                elif registered not in path:
                    self.report(
                        node,
                        f"fault point {first.value!r} planted outside its "
                        f"registered module {registered}",
                    )
        self.generic_visit(node)


@register_rule
class DirectLLMCallRule(LintRule):
    """The LLM is a supervised dependency, not a convenience: calls that
    bypass :mod:`repro.llm` skip the traffic-control middleware (cache,
    coalescing, breaker, retries, rate limit) and the one spec grammar
    operators configure.  ``repro.llm`` is the sanctioned construction
    site for providers; everything else takes an injected provider and
    never invokes ``.complete``/``.complete_batch`` on one directly."""

    name = "direct-llm-call"
    description = ("forbid LLM provider construction and .complete()/"
                   ".complete_batch() calls outside repro.llm")
    hint = ("inject an LLMProvider built by repro.llm.factory, or route the "
            "call through EventInterpreter")

    # The LLM package itself, the fault harness and tests exercise
    # providers directly by design.
    _EXEMPT_FRAGMENTS = ("repro/llm/", "repro/testing/", "tests/",
                         "benchmarks/", "examples/")
    _COMPLETE_ATTRS = ("complete", "complete_batch")

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._EXEMPT_FRAGMENTS)

    @staticmethod
    def _provider_class_names() -> frozenset[str]:
        """Names of concrete provider/middleware classes in repro.llm.

        Collected lazily from the package by real inheritance (MRO
        membership, not the structural ``__subclasshook__``), so new
        providers are covered without touching this rule.
        """
        from .. import llm
        from ..llm.providers import LLMProvider

        return frozenset(
            name for name in getattr(llm, "__all__", ())
            if isinstance(getattr(llm, name, None), type)
            and LLMProvider in getattr(llm, name).__mro__
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self._exempt():
            return
        func = node.func
        callee = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else ""
        if callee in self._provider_class_names():
            self.report(node, f"direct LLM provider construction {callee}(...)")
        elif (isinstance(func, ast.Attribute)
                and func.attr in self._COMPLETE_ATTRS
                and not (isinstance(func.value, ast.Name)
                         and func.value.id == "self")):
            self.report(node, f"direct LLM .{func.attr}() call")
        self.generic_visit(node)


def _is_module_base(base: ast.expr) -> bool:
    name = base.id if isinstance(base, ast.Name) else \
        base.attr if isinstance(base, ast.Attribute) else ""
    return name.endswith("Module") and name != ""


def _is_super_init_call(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "__init__"
            and isinstance(stmt.value.func.value, ast.Call)
            and isinstance(stmt.value.func.value.func, ast.Name)
            and stmt.value.func.value.func.id == "super")


def _self_attribute_targets(stmt: ast.stmt) -> list[ast.Attribute]:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    return [t for t in targets
            if isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)
            and t.value.id == "self"]


@register_rule
class ModuleSuperInitRule(LintRule):
    """A ``Module`` subclass that assigns attributes before (or without)
    ``super().__init__()`` silently registers zero parameters — the exact
    hazard ``Module.__setattr__`` now raises on at runtime."""

    name = "module-super-init"
    description = "Module subclasses must call super().__init__() before assigning attributes"
    hint = "make super().__init__() the first statement of __init__"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not any(_is_module_base(base) for base in node.bases):
            self.generic_visit(node)
            return
        init = next((item for item in node.body
                     if isinstance(item, ast.FunctionDef)
                     and item.name == "__init__"), None)
        if init is not None:
            if not any(_is_super_init_call(stmt) for stmt in init.body):
                self.report(init, f"{node.name}.__init__ never calls super().__init__()")
            else:
                for stmt in init.body:
                    if _is_super_init_call(stmt):
                        break
                    for target in _self_attribute_targets(stmt):
                        self.report(
                            target,
                            f"self.{target.attr} assigned before super().__init__()",
                        )
        self.generic_visit(node)


@register_rule
class DirectThreadRule(LintRule):
    """Concurrency is a subsystem, not a convenience: ad-hoc threads
    bypass the runtime's queues, backpressure and supervision, and make
    replay non-deterministic.  ``repro.runtime`` is the one sanctioned
    construction site; everything else must submit work to it (or carry
    an explicit, reviewable suppression)."""

    name = "direct-thread"
    description = "forbid threading.Thread(...) outside repro.runtime"
    hint = "submit work to repro.runtime (or suppress with # lint: disable=direct-thread)"

    # Path fragments (posix-normalized) exempt from the rule.
    _ALLOWED_FRAGMENTS = ("repro/runtime/",)

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._ALLOWED_FRAGMENTS)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        constructed = (
            (isinstance(func, ast.Attribute) and func.attr == "Thread"
             and isinstance(func.value, ast.Name)
             and func.value.id == "threading")
            or (isinstance(func, ast.Name) and func.id == "Thread")
        )
        if constructed and not self._exempt():
            self.report(node, "direct threading.Thread construction")
        self.generic_visit(node)


@register_rule
class DirectProcessRule(LintRule):
    """The process-executor counterpart of ``direct-thread``: ad-hoc
    worker processes and shared-memory segments bypass the executor's
    weight broadcast, journal-refeed crash recovery and registry
    merging — and a leaked ``/dev/shm`` segment outlives the run.
    ``repro.runtime`` (procexec + broadcast) is the one sanctioned
    construction site; tests and benchmarks are exempt."""

    name = "direct-process"
    description = ("forbid multiprocessing / shared-memory construction "
                   "outside repro.runtime")
    hint = ("route work through repro.runtime's process executor "
            "(or suppress with # lint: disable=direct-process)")

    # Path fragments (posix-normalized) exempt from the rule.
    _ALLOWED_FRAGMENTS = ("repro/runtime/", "tests/", "benchmarks/")

    # Constructors on the `multiprocessing` / `mp` module objects.
    _MP_ATTRS = frozenset({
        "Process", "Pool", "Manager", "Queue", "SimpleQueue",
        "JoinableQueue", "Pipe", "get_context",
    })
    # Constructors on `multiprocessing.shared_memory` (or its alias).
    _SHM_ATTRS = frozenset({"SharedMemory", "ShareableList"})
    # Bare names that only the mp machinery exports (``Queue`` is
    # deliberately absent: bare ``Queue`` is usually ``queue.Queue``).
    _BARE_NAMES = frozenset({"Process", "Pool", "SharedMemory",
                             "ShareableList"})

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._ALLOWED_FRAGMENTS)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        constructed = False
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            constructed = (
                (base in ("multiprocessing", "mp")
                 and func.attr in self._MP_ATTRS)
                or (base in ("shared_memory", "multiprocessing", "mp")
                    and func.attr in self._SHM_ATTRS)
            )
        elif isinstance(func, ast.Name):
            constructed = func.id in self._BARE_NAMES
        if constructed and not self._exempt():
            self.report(node, f"direct {ast.unparse(func)} construction")
        self.generic_visit(node)


@register_rule
class PerTimestepLoopRule(LintRule):
    """BPTT recurrences belong in :mod:`repro.nn.kernels`, where one fused
    autograd node replays the whole sequence; a Python loop over a tensor
    time axis anywhere else rebuilds the per-timestep graph the kernel
    layer exists to eliminate (PR 4's ≥2x training-throughput win)."""

    name = "per-timestep-loop"
    description = "forbid per-timestep Python loops over a tensor time axis outside repro.nn.kernels"
    hint = "route the recurrence through repro.nn.kernels (or suppress with # lint: disable=per-timestep-loop)"

    # Path fragments (posix-normalized) exempt from the rule.
    _ALLOWED_FRAGMENTS = ("repro/nn/kernels.py",)

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._ALLOWED_FRAGMENTS)

    @staticmethod
    def _is_shape_attr(node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "shape"

    @staticmethod
    def _axis_at_least_one(index: ast.expr) -> bool:
        return (isinstance(index, ast.Constant) and isinstance(index.value, int)
                and index.value >= 1)

    def _collect_time_axis_names(self, tree: ast.Module) -> set[str]:
        """Names bound to a non-leading ``.shape`` axis anywhere in the file.

        Catches both ``batch, seq, _ = x.shape`` (tuple positions >= 1) and
        ``seq = x.shape[1]``-style bindings.
        """
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            for target in node.targets:
                if isinstance(target, ast.Tuple) and self._is_shape_attr(value):
                    for position, element in enumerate(target.elts):
                        if position >= 1 and isinstance(element, ast.Name):
                            names.add(element.id)
                elif (isinstance(target, ast.Name) and isinstance(value, ast.Subscript)
                        and self._is_shape_attr(value.value)
                        and self._axis_at_least_one(value.slice)):
                    names.add(target.id)
        return names

    def _is_time_range(self, iterator: ast.expr, time_names: set[str]) -> bool:
        if not (isinstance(iterator, ast.Call) and isinstance(iterator.func, ast.Name)
                and iterator.func.id == "range" and len(iterator.args) == 1
                and not iterator.keywords):
            return False
        arg = iterator.args[0]
        if isinstance(arg, ast.Name):
            return arg.id in time_names
        return (isinstance(arg, ast.Subscript) and self._is_shape_attr(arg.value)
                and self._axis_at_least_one(arg.slice))

    def visit_Module(self, node: ast.Module) -> None:
        if self._exempt():
            return
        time_names = self._collect_time_axis_names(node)
        for child in ast.walk(node):
            if isinstance(child, ast.For):
                iterators = [child.iter]
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                    ast.GeneratorExp)):
                iterators = [gen.iter for gen in child.generators]
            else:
                continue
            if any(self._is_time_range(it, time_names) for it in iterators):
                self.report(child, "per-timestep Python loop over a tensor time axis")


@register_rule
class ForwardConventionsRule(LintRule):
    """``forward`` is the module contract: an instance method invoked via
    ``module(...)``, never called directly on another object."""

    name = "forward-conventions"
    description = "forward() must be a plain instance method; call modules, not .forward()"
    hint = "define forward(self, x, ...) and invoke submodules as module(x)"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_is_module_base(base) for base in node.bases):
            forward = next((item for item in node.body
                            if isinstance(item, ast.FunctionDef)
                            and item.name == "forward"), None)
            if forward is not None:
                if any(isinstance(dec, ast.Name)
                       and dec.id in ("staticmethod", "classmethod")
                       for dec in forward.decorator_list):
                    self.report(forward, "forward() must be an instance method")
                elif not forward.args.args or forward.args.args[0].arg != "self":
                    self.report(forward, "forward() must take self as its first parameter")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "forward"
                and not (isinstance(func.value, ast.Name)
                         and func.value.id == "self")):
            self.report(node, "call the module directly instead of .forward()",
                        hint="module(x) routes through __call__; .forward() skips it")
        self.generic_visit(node)


@register_rule
class DetectorOutsideRegistryRule(LintRule):
    """Detectors are a portfolio, not a convenience: a class with a
    ``score_window`` method defined outside :mod:`repro.detectors` can
    never be reached by ``--detectors`` specs, gets no per-member obs
    counters, and silently skips the ensemble's warmup/degradation
    contract.  New members belong in ``repro.detectors`` with a
    ``DETECTOR_BUILDERS`` registration.  Tests and benchmarks may define
    ad-hoc scorers."""

    name = "detector-outside-registry"
    description = "classes with a score_window method belong in repro.detectors"
    hint = ("move the detector into repro.detectors and register it in "
            "DETECTOR_BUILDERS (or suppress with "
            "# lint: disable=detector-outside-registry)")

    # Path fragments (posix-normalized) exempt from the rule.
    _ALLOWED_FRAGMENTS = ("repro/detectors/", "tests/", "benchmarks/")

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._ALLOWED_FRAGMENTS)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._exempt():
            scorer = next((item for item in node.body
                           if isinstance(item, (ast.FunctionDef,
                                                ast.AsyncFunctionDef))
                           and item.name == "score_window"), None)
            if scorer is not None:
                self.report(scorer,
                            f"{node.name}.score_window defines a detector "
                            f"outside the repro.detectors registry")
        self.generic_visit(node)


@register_rule
class UnmanagedCheckpointWriteRule(LintRule):
    """Checkpoint durability rests on one code path: the manifest-aware
    :class:`~repro.core.checkpoint.CheckpointStore` saver, which digests
    the payload, writes to a temp file, renames atomically, and records
    the entry in ``MANIFEST.json`` before pruning.  A raw ``np.savez``
    anywhere else produces an orphan npz the resume path cannot trust —
    no digest, no manifest entry, no torn-write detection.  Model/weight
    serialization (``repro.nn.module``, the runtime broadcast arena, and
    pipeline export) have their own formats and are exempt, as are tests
    and benchmarks."""

    name = "unmanaged-checkpoint-write"
    description = "forbid np.savez outside the manifest-aware checkpoint saver"
    hint = ("route checkpoint writes through CheckpointStore.save (or "
            "suppress with # lint: disable=unmanaged-checkpoint-write)")

    # Path fragments (posix-normalized) exempt from the rule.
    _ALLOWED_FRAGMENTS = (
        "repro/core/checkpoint.py", "repro/nn/module.py",
        "repro/runtime/broadcast.py", "repro/core/pipeline.py",
        "tests/", "benchmarks/", "examples/",
    )

    _SAVEZ_FUNCS = ("savez", "savez_compressed")

    def _exempt(self) -> bool:
        path = self.source.path.replace("\\", "/")
        return any(fragment in path for fragment in self._ALLOWED_FRAGMENTS)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._exempt():
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in self._SAVEZ_FUNCS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in _NUMPY_ALIASES):
                self.report(node, f"unmanaged checkpoint write np.{func.attr}()")
            elif isinstance(func, ast.Name) and func.id in self._SAVEZ_FUNCS:
                self.report(node, f"unmanaged checkpoint write {func.id}()")
        self.generic_visit(node)
