"""Model auditor: static + one-step-probe correctness checks for modules.

Given any :class:`repro.nn.Module`, :func:`audit_model` runs three layers
of checks and returns an :class:`AuditReport`:

1. **Structural** — walks the *object graph* (attributes, lists, tuples,
   dicts) and compares it against the *registered* module tree: submodules
   that never called ``super().__init__()``, modules reachable from
   attributes but invisible to ``parameters()``, parameters registered
   under two names, non-finite or accidentally grad-free parameters.
2. **Symbolic shapes** — propagates a symbolic input shape through the
   registered tree (see :mod:`repro.analysis.shapes`) so adjacent-layer
   dimension mismatches surface without running any forward pass.
3. **One-step probe** — builds a deterministic example input, runs one
   forward/backward, and classifies every parameter that received no
   gradient: if perturbing it still changes the loss the graph is broken
   (an op was routed through ``.data``/``detach()`` — the failure mode
   that silently disables the GRL/domain-adversarial branch); if not, the
   parameter is dead weight.  Non-finite outputs and gradients are also
   flagged.

Audit outcomes feed ``repro.obs`` counters (``analysis.audit.*``) so CI
runs exporting metrics record what was checked.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..nn import (
    BiLSTM, Embedding, GRU, GRUCell, LIFLayer, LSTM, LSTMCell, Module,
    Sequential, no_grad,
)
from ..nn.tensor import Tensor
from ..obs import get_registry
from .findings import AuditReport, Severity
from . import shapes

__all__ = [
    "audit_model", "audit_baseline", "audit_logsynergy", "audit_spec",
    "build_probe", "probe_data",
]

_PROBE_BATCH = 2
_PROBE_SEQ = 3
_PERTURB_EPS = 0.1
_INFLUENCE_TOL = 1e-6

# Reduced hyperparameters so ``repro audit <baseline>`` fits in seconds.
_BASELINE_FAST_KWARGS: dict[str, dict] = {
    "DeepLog": dict(epochs=1, hidden_size=32, num_layers=1),
    "LogAnomaly": dict(epochs=1, hidden_size=32, num_layers=1),
    "PLELog": dict(epochs=1, hidden_size=24),
    "SpikeLog": dict(epochs=1, hidden_size=32),
    "NeuralLog": dict(epochs=1, d_model=32, num_layers=1, d_ff=64),
    "LogRobust": dict(epochs=1, hidden_size=24, num_layers=1),
    "PreLog": dict(pretrain_epochs=1, tune_epochs=1, d_model=32, d_ff=64),
    "LogTAD": dict(epochs=1, hidden_size=32, num_layers=1),
    "LogTransfer": dict(source_epochs=1, target_epochs=1, hidden_size=32, num_layers=1),
    "MetaLog": dict(meta_episodes=2, adapt_steps=2, hidden_size=24, num_layers=1),
}


# ----------------------------------------------------------------------
# Object-graph discovery (defensive: modules may lack registration dicts)
# ----------------------------------------------------------------------
def _initialized(module: Module) -> bool:
    """Whether ``Module.__init__`` ran (registration dicts exist)."""
    return "_parameters" in module.__dict__ and "_modules" in module.__dict__


def _candidates(value) -> Iterator[tuple[str, Module]]:
    """Module instances inside an attribute value (one container level)."""
    if isinstance(value, Module):
        yield "", value
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            if isinstance(item, Module):
                yield f"[{index}]", item
    elif isinstance(value, dict):
        for key, item in value.items():
            if isinstance(item, Module):
                yield f"[{key!r}]", item


def _discover(root: Module) -> dict[int, tuple[str, Module]]:
    """All modules reachable through plain attributes and containers."""
    found: dict[int, tuple[str, Module]] = {}
    stack: list[tuple[str, Module]] = [("", root)]
    while stack:
        path, module = stack.pop()
        if id(module) in found:
            continue
        found[id(module)] = (path, module)
        for name, value in vars(module).items():
            if name in ("_parameters", "_modules"):
                continue
            for suffix, child in _candidates(value):
                child_path = f"{path}.{name}{suffix}" if path else f"{name}{suffix}"
                stack.append((child_path, child))
    return found


def _registered(root: Module) -> dict[int, tuple[str, Module]]:
    """Modules visible through the ``_modules`` registration tree."""
    out: dict[int, tuple[str, Module]] = {}
    stack: list[tuple[str, Module]] = [("", root)]
    while stack:
        path, module = stack.pop()
        if id(module) in out:
            continue
        out[id(module)] = (path, module)
        for name, child in module.__dict__.get("_modules", {}).items():
            stack.append((f"{path}.{name}" if path else name, child))
    return out


def _registered_parameters(root: Module) -> list[tuple[str, Tensor]]:
    """(dotted name, parameter) pairs via the registration tree, defensively."""
    pairs: list[tuple[str, Tensor]] = []
    for path, module in sorted(_registered(root).values(), key=lambda item: item[0]):
        for name, param in module.__dict__.get("_parameters", {}).items():
            pairs.append((f"{path}.{name}" if path else name, param))
    return pairs


def _subtree_has_parameters(module: Module) -> bool:
    return any(_registered_parameters(module)) or not _initialized(module)


# ----------------------------------------------------------------------
# Probe construction
# ----------------------------------------------------------------------
def _tensors_in(value) -> Iterator[Tensor]:
    if isinstance(value, Tensor):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _tensors_in(item)


def _scalar_loss(output) -> Tensor | None:
    """Fold a forward output (tensor or nest of tensors) into a scalar."""
    total: Tensor | None = None
    for tensor in _tensors_in(output):
        term = tensor.sum()
        total = term if total is None else total + term
    return total


def _randn(rng: np.random.Generator, *shape: int) -> Tensor:
    return Tensor(rng.standard_normal(shape).astype(np.float32))


def _custom_probe(module: Module) -> Callable[[], Tensor] | None:
    """Probes for composite models whose forward needs structured inputs."""
    from ..core.club import CLUBEstimator
    from ..core.daan import DAANModule
    from ..core.model import LogSynergyModel

    rng = np.random.default_rng(0)
    if isinstance(module, LogSynergyModel):
        batch = rng.standard_normal(
            (_PROBE_BATCH * 2, 4, module.config.embedding_dim)).astype(np.float32)

        def logsynergy_probe() -> Tensor:
            unified, specific = module.extract_features(batch)
            return (module.anomaly_logits(unified).sum()
                    + module.system_logits(specific).sum())

        return logsynergy_probe
    if isinstance(module, DAANModule):
        feature_dim = module.global_discriminator.layers[0].in_features
        features = _randn(rng, 4, feature_dim)
        domain_labels = np.array([0, 0, 1, 1], dtype=np.int64)
        probabilities = Tensor(np.full((4, module.num_classes),
                                       1.0 / module.num_classes, dtype=np.float32))

        def daan_probe() -> Tensor:
            omega = module.omega  # forward's EMA update must not leak between calls
            try:
                return module(features, domain_labels, probabilities)
            finally:
                module.omega = omega

        return daan_probe
    if isinstance(module, CLUBEstimator):
        u_dim = module.mu_net.layers[0].in_features
        s_dim = module.mu_net.layers[-1].out_features
        u, s = _randn(rng, 4, u_dim), _randn(rng, 4, s_dim)
        return lambda: module.learning_loss(u, s)
    if isinstance(module, LSTMCell):
        x = _randn(rng, _PROBE_BATCH, module.input_size)
        state = (Tensor(np.zeros((_PROBE_BATCH, module.hidden_size), dtype=np.float32)),
                 Tensor(np.zeros((_PROBE_BATCH, module.hidden_size), dtype=np.float32)))
        return lambda: _scalar_loss(module(x, state))
    if isinstance(module, GRUCell):
        x = _randn(rng, _PROBE_BATCH, module.input_size)
        h = Tensor(np.zeros((_PROBE_BATCH, module.hidden_size), dtype=np.float32))
        return lambda: _scalar_loss(module(x, h))
    return None


def build_probe(module: Module) -> Callable[[], Tensor] | None:
    """A deterministic ``() -> scalar loss`` closure for the module, or None.

    Custom composite models get hand-written probes; anything whose input
    shape :func:`repro.analysis.shapes.symbolic_input` can infer gets a
    generic forward-and-sum probe.
    """
    custom = _custom_probe(module)
    if custom is not None:
        return custom
    rng = np.random.default_rng(0)
    if isinstance(module, Embedding):
        ids = rng.integers(0, module.num_embeddings, size=(_PROBE_BATCH, _PROBE_SEQ))
        return lambda: _scalar_loss(module(ids))
    shape = shapes.symbolic_input(module)
    if shape is None:
        return None
    dims = tuple(_PROBE_BATCH if d == "B" else _PROBE_SEQ if d == "T" else d
                 for d in shape)
    if isinstance(module, Sequential) and module.layers and \
            isinstance(module.layers[0], Embedding):
        first = module.layers[0]
        ids = rng.integers(0, first.num_embeddings, size=dims)
        return lambda: _scalar_loss(module(ids))
    example = _randn(rng, *dims)
    return lambda: _scalar_loss(module(example))


def _loss_value(probe: Callable[[], Tensor]) -> float:
    with no_grad():
        out = probe()
    return float(np.sum(out.data))


def _influences_loss(probe: Callable[[], Tensor], param: Tensor,
                     base: float) -> bool:
    """Does nudging the parameter move the loss despite no gradient?"""
    original = param.data
    try:
        for eps in (_PERTURB_EPS, -_PERTURB_EPS):
            param.data = original + np.float32(eps)
            if abs(_loss_value(probe) - base) > _INFLUENCE_TOL * max(1.0, abs(base)):
                return True
    finally:
        param.data = original
    return False


# ----------------------------------------------------------------------
# The audit passes
# ----------------------------------------------------------------------
def _structural_pass(report: AuditReport, root: Module) -> bool:
    """Object-graph vs registration-tree checks; False aborts the audit."""
    if not _initialized(root):
        report.add(
            "missing-super-init", Severity.ERROR, type(root).__name__,
            "module never ran Module.__init__(); no parameters or submodules "
            "are registered",
            hint="call super().__init__() at the top of __init__",
        )
        return False

    discovered = _discover(root)
    registered = _registered(root)
    report.num_modules = len(registered)

    for object_id, (path, module) in sorted(discovered.items(),
                                            key=lambda item: item[1][0]):
        if module is root:
            continue
        if not _initialized(module):
            report.add(
                "missing-super-init", Severity.ERROR,
                path or type(module).__name__,
                f"{type(module).__name__} never ran Module.__init__(); its "
                "parameters are invisible to the optimizer",
                hint="call super().__init__() at the top of __init__",
            )
            continue
        if object_id not in registered:
            severity = (Severity.ERROR if _subtree_has_parameters(module)
                        else Severity.WARNING)
            report.add(
                "unregistered-submodule", severity, path,
                f"{type(module).__name__} is reachable from attributes but "
                "not registered; parameters() will not include it",
                hint="assign modules directly to attributes (or use ModuleList) "
                     "so __setattr__ registers them",
            )

    parameters = _registered_parameters(root)
    report.num_parameters = sum(int(p.size) for _, p in parameters)
    seen: dict[int, str] = {}
    for name, param in parameters:
        previous = seen.setdefault(id(param), name)
        if previous != name:
            report.add(
                "shared-parameter", Severity.WARNING, name,
                f"parameter object is also registered as {previous!r}; "
                "gradients will accumulate into one tensor",
                hint="intentional weight tying is fine; otherwise copy the data",
            )
        if not np.isfinite(param.data).all():
            report.add(
                "non-finite-parameter", Severity.ERROR, name,
                "parameter contains NaN or infinite values",
                hint="check the initializer and any in-place data edits",
            )
        if not param.requires_grad:
            report.add(
                "no-grad-parameter", Severity.ERROR, name,
                "Parameter has requires_grad=False; it can never train",
                hint="was the module constructed inside nn.no_grad()?",
            )
    return True


def _shape_pass(report: AuditReport, root: Module) -> bool:
    """Symbolic shape propagation; returns True when shapes are clean."""
    input_shape = shapes.symbolic_input(root)
    if input_shape is None:
        return True
    output_shape, findings = shapes.propagate(root, input_shape)
    del output_shape
    report.shape_checked = True
    clean = True
    for finding in findings:
        report.findings.append(finding)
        if finding.severity is Severity.ERROR:
            clean = False
    return clean


def _probe_pass(report: AuditReport, root: Module,
                probe: Callable[[], Tensor] | None,
                gradcheck: bool) -> None:
    probe = probe or build_probe(root)
    if probe is None:
        report.add(
            "probe-skipped", Severity.INFO, "",
            f"no probe input could be inferred for {type(root).__name__}",
            hint="pass probe= to audit_model with a () -> scalar-loss closure",
        )
        return

    was_training = root.training
    root.eval()
    root.zero_grad()
    try:
        try:
            loss = probe()
        except Exception as exc:  # lint: disable=blanket-except
            # The probe runs arbitrary user model code; any crash is itself
            # the finding.
            report.add(
                "forward-failed", Severity.ERROR, "",
                f"probe forward raised {type(exc).__name__}: {exc}",
                hint="run the shape audit findings down first",
            )
            return
        if loss is None:
            report.add(
                "probe-skipped", Severity.INFO, "",
                "forward produced no tensors to build a loss from",
            )
            return
        report.probed = True
        base = float(np.sum(loss.data))
        if not np.isfinite(loss.data).all():
            report.add(
                "non-finite-output", Severity.ERROR, "",
                "probe forward produced NaN or infinite values",
                hint="check normalization terms and log/exp inputs",
            )
            return
        if loss.requires_grad:
            loss.backward()

        for name, param in _registered_parameters(root):
            if not param.requires_grad:
                continue  # already reported by the structural pass
            if param.grad is None:
                if _influences_loss(probe, param, base):
                    report.add(
                        "broken-graph", Severity.ERROR, name,
                        "parameter influences the output but received no "
                        "gradient — the autograd graph is broken on its path",
                        hint="look for ops routed through .data, detach(), or "
                             "Tensor(x.data) re-wrapping (this silently disables "
                             "GRL/adversarial branches)",
                    )
                else:
                    report.add(
                        "dead-parameter", Severity.ERROR, name,
                        "parameter received no gradient and does not affect "
                        "the output",
                        hint="remove it or wire it into forward()",
                    )
                continue
            if not np.isfinite(param.grad).all():
                report.add(
                    "non-finite-grad", Severity.ERROR, name,
                    "gradient contains NaN or infinite values",
                    hint="check for division by ~0 or exploding activations",
                )
            elif gradcheck and param.size <= 64:
                from ..nn.gradcheck import parameter_gradient_error

                error = parameter_gradient_error(lambda: _loss_value(probe), param)
                if error > 5e-2 * max(1.0, abs(base)):
                    report.add(
                        "gradient-mismatch", Severity.ERROR, name,
                        f"analytic gradient differs from finite differences "
                        f"by {error:.3g}",
                        hint="the op's backward rule is wrong",
                    )
    finally:
        root.zero_grad()
        root.train(was_training)


def audit_model(module: Module, name: str | None = None,
                probe: Callable[[], Tensor] | None = None,
                gradcheck: bool = False) -> AuditReport:
    """Run the full audit (structural, shapes, probe) on one module tree."""
    report = AuditReport(model=name or type(module).__name__)
    if _structural_pass(report, module):
        shapes_clean = _shape_pass(report, module)
        if shapes_clean:
            _probe_pass(report, module, probe, gradcheck)
        else:
            report.add(
                "probe-skipped", Severity.INFO, "",
                "probe skipped because shape propagation already failed",
            )
    registry = get_registry()
    registry.counter("analysis.audit.models").inc()
    registry.counter("analysis.audit.findings").inc(len(report.findings))
    registry.counter("analysis.audit.errors").inc(len(report.errors))
    return report


# ----------------------------------------------------------------------
# Auditing the repo's own models (CLI + self-hosting gate)
# ----------------------------------------------------------------------
def probe_data(seed: int = 0):
    """Tiny synthetic experiment data used to fit baselines before auditing.

    Returns ``(sources, target_system, target_train)`` shaped like the
    experiment runner's splits, small enough that fitting any baseline
    takes seconds.
    """
    from ..evaluation.splits import continuous_target_split, source_training_slice
    from ..logs import build_dataset

    names = ("bgl", "spirit", "thunderbird")
    datasets = {name: build_dataset(name, scale=0.006, seed=seed + index)
                for index, name in enumerate(names)}
    sources = {name: source_training_slice(dataset.sequences, 250)
               for name, dataset in datasets.items() if name != "thunderbird"}
    split = continuous_target_split(datasets["thunderbird"].sequences, 80)
    return sources, "thunderbird", split.train


def audit_baseline(name: str, data=None, seed: int = 0,
                   gradcheck: bool = False, **kwargs) -> list[AuditReport]:
    """Fit one registry baseline on tiny data and audit every module it owns."""
    from ..baselines.registry import make_baseline

    merged = {**_BASELINE_FAST_KWARGS.get(name, {}), **kwargs}
    detector = make_baseline(name, **merged)
    sources, target, target_train = data if data is not None else probe_data(seed)
    detector.fit(sources, target, target_train)
    modules = detector.modules()
    if not modules:
        report = AuditReport(model=name)
        report.add(
            "no-modules", Severity.INFO, "",
            "detector owns no nn.Module objects after fit; nothing to audit",
        )
        return [report]
    return [audit_model(module, name=f"{name}.{attribute}", gradcheck=gradcheck)
            for attribute, module in modules.items()]


def audit_logsynergy(seed: int = 0, gradcheck: bool = False) -> AuditReport:
    """Audit a freshly constructed (untrained) LogSynergy network."""
    from ..config import LogSynergyConfig
    from ..core.model import LogSynergyModel

    config = LogSynergyConfig(d_model=32, num_heads=4, num_layers=1, d_ff=64,
                              feature_dim=16, embedding_dim=64, seed=seed)
    model = LogSynergyModel(config, num_systems=3,
                            rng=np.random.default_rng(seed))
    return audit_model(model, name="LogSynergyModel", gradcheck=gradcheck)


def audit_spec(specs, seed: int = 0, data=None,
               gradcheck: bool = False) -> list[AuditReport]:
    """Resolve CLI model specs into audit reports.

    A spec is ``"logsynergy"``, a baseline registry name, or ``"all"``
    (LogSynergy plus every registry baseline).
    """
    from ..baselines.registry import BASELINES

    if isinstance(specs, str):
        specs = [specs]
    resolved: list[str] = []
    for spec in specs:
        if spec == "all":
            resolved.extend(["logsynergy", *BASELINES])
        else:
            resolved.append(spec)

    reports: list[AuditReport] = []
    baseline_data = data
    for spec in resolved:
        if spec.lower() == "logsynergy":
            reports.append(audit_logsynergy(seed=seed, gradcheck=gradcheck))
            continue
        if spec not in BASELINES:
            raise KeyError(
                f"unknown model spec {spec!r}; expected 'logsynergy', 'all', "
                f"or one of: {', '.join(BASELINES)}"
            )
        if baseline_data is None:
            baseline_data = probe_data(seed)
        reports.extend(audit_baseline(spec, data=baseline_data, seed=seed,
                                      gradcheck=gradcheck))
    return reports
