"""The LogSynergy network (§III-D1).

``F`` (a Transformer encoder over event-embedding sequences) produces a
pooled feature vector that SUFE splits into system-unified features
``F_u(x)`` and system-specific features ``F_s(x)`` of equal dimension.
``C_anomaly`` predicts the anomaly label from ``F_u``; ``C_system``
predicts which system produced the sequence from ``F_s``.  The CLUB and
DAAN modules attach during training only; online detection uses just
``F`` and ``C_anomaly`` (§III-E).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..config import LogSynergyConfig
from ..nn.tensor import Tensor

__all__ = ["LogSynergyModel"]


class LogSynergyModel(nn.Module):
    """Feature extractor + SUFE split + anomaly/system classifiers."""

    def __init__(self, config: LogSynergyConfig, num_systems: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_systems < 2:
            raise ValueError("LogSynergy needs at least 2 systems (source + target)")
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.num_systems = num_systems

        self.input_projection = nn.Linear(config.embedding_dim, config.d_model, rng=rng)
        self.encoder = nn.TransformerEncoder(
            d_model=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            d_ff=config.d_ff,
            dropout=config.dropout,
            max_len=max(64, config.window),
            rng=rng,
        )
        # Pooled encoder output -> disentangled feature pair (Fig 3).
        self.feature_head = nn.Linear(config.d_model, 2 * config.feature_dim, rng=rng)
        self.anomaly_classifier = nn.Sequential(
            nn.Linear(config.feature_dim, config.feature_dim, rng=rng),
            nn.ReLU(),
            nn.Linear(config.feature_dim, 1, rng=rng),
        )
        self.system_classifier = nn.Sequential(
            nn.Linear(config.feature_dim, config.feature_dim, rng=rng),
            nn.ReLU(),
            nn.Linear(config.feature_dim, num_systems, rng=rng),
        )

    # ------------------------------------------------------------------
    def extract_features(self, sequences: np.ndarray) -> tuple[Tensor, Tensor]:
        """Return ``(F_u(x), F_s(x))`` for a batch.

        ``sequences`` has shape ``(batch, window, embedding_dim)``.
        """
        x = Tensor(np.ascontiguousarray(sequences, dtype=np.float32))
        projected = self.input_projection(x)
        pooled = self.encoder.pooled(projected)
        combined = self.feature_head(pooled)
        dim = self.config.feature_dim
        return combined[:, :dim], combined[:, dim:]

    def anomaly_logits(self, unified: Tensor) -> Tensor:
        return self.anomaly_classifier(unified).reshape(-1)

    def system_logits(self, specific: Tensor) -> Tensor:
        return self.system_classifier(specific)

    def forward(self, sequences: np.ndarray) -> Tensor:
        """Anomaly probabilities for a batch (online-detection path)."""
        unified, _ = self.extract_features(sequences)
        return self.anomaly_logits(unified).sigmoid()

    def predict(self, sequences: np.ndarray, threshold: float | None = None,
                batch_size: int = 256) -> np.ndarray:
        """Binary predictions without building the autograd graph."""
        threshold = self.config.threshold if threshold is None else threshold
        return (self.predict_proba(sequences, batch_size=batch_size) > threshold).astype(np.int64)

    def predict_proba(self, sequences: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Anomaly probabilities, batched, in eval mode with grads disabled."""
        was_training = self.training
        self.eval()
        probabilities = []
        try:
            with nn.no_grad():
                for start in range(0, len(sequences), batch_size):
                    batch = sequences[start : start + batch_size]
                    probabilities.append(self.forward(batch).data)
        finally:
            self.train(was_training)
        if not probabilities:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(probabilities)
