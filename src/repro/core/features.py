"""Event representation pipeline: parsing -> LEI -> event embedding (§III-B/C).

For each system, a :class:`SystemFeaturizer` owns a Drain template store,
interpretations for every mined event (via LEI, or the raw template text
for the "w/o LEI" ablation), and the event-embedding table.  Unseen events
arriving online are parsed, interpreted and embedded on the fly, exactly
as §III-E describes.
"""

from __future__ import annotations

import numpy as np

from ..embedding.encoder import SentenceEncoder
from ..llm.providers import LLMProvider
from ..llm.interpreter import EventInterpreter
from ..logs.sequences import LogSequence
from ..parsing.template_store import TemplateStore

__all__ = ["SystemFeaturizer"]


class SystemFeaturizer:
    """Maps one system's log messages to event embeddings.

    Parameters
    ----------
    system:
        System name (used in LEI prompts for system context).
    encoder:
        Sentence encoder shared across systems (the unified feature space).
    llm:
        LLM provider for LEI; ``None`` disables interpretation and embeds
        the raw Drain template text instead ("LogSynergy w/o LEI").
    """

    def __init__(self, system: str, encoder: SentenceEncoder,
                 llm: LLMProvider | None = None):
        self.system = system
        self.encoder = encoder
        self.store = TemplateStore()
        self.interpreter = EventInterpreter(llm) if llm is not None else None
        self._interpretations: dict[int, str] = {}
        self._embeddings: dict[int, np.ndarray] = {}

    @property
    def embedding_dim(self) -> int:
        """Dimension of the event embeddings."""
        return self.encoder.dim

    @property
    def num_events(self) -> int:
        """Number of distinct events embedded so far."""
        return len(self._embeddings)

    def interpretation_of(self, event_id: int) -> str:
        """Cached interpretation text for an event id."""
        return self._interpretations[event_id]

    # ------------------------------------------------------------------
    def _text_for_event(self, event_id: int) -> str:
        if self.interpreter is None:
            return self.store.template_text(event_id)
        text, _ = self.interpreter.interpret_event(
            self.system, self.store.representative(event_id)
        )
        return text

    def _ensure_event(self, event_id: int) -> np.ndarray:
        embedding = self._embeddings.get(event_id)
        if embedding is None:
            self.interpret_events([event_id])
            embedding = self.encoder.encode(self._interpretations[event_id])
            self._embeddings[event_id] = embedding
        return embedding

    # ------------------------------------------------------------------
    # Phased API: parse -> interpret -> embed.  The offline pipeline runs
    # each phase over all sequences so it can report per-stage spans; the
    # per-message helpers below compose the same phases, so both paths
    # produce identical caches.
    # ------------------------------------------------------------------
    def parse_sequences(self, sequences: list[LogSequence]) -> list[list[int]]:
        """Phase 1 — Drain-parse sequences into an event-id grid.

        Messages stream in sequence order (same prefix behaviour as the
        per-message path); shared records across overlapping windows are
        parsed once.  For the "w/o LEI" ablation the template text is
        snapshotted at first encounter, before later messages generalize
        the template — matching what interleaved parsing embeds.
        """
        if not sequences:
            return []
        window = len(sequences[0])
        grid: list[list[int]] = []
        cache: dict[int, int] = {}
        for row, sequence in enumerate(sequences):
            if len(sequence) != window:
                raise ValueError(
                    f"sequence {row} has length {len(sequence)}, expected {window}"
                )
            ids: list[int] = []
            for record in sequence.records:
                key = id(record)
                event_id = cache.get(key)
                if event_id is None:
                    event_id = self.store.ingest(record.message).event_id
                    if self.interpreter is None and event_id not in self._interpretations:
                        # Snapshot now: the template may generalize later.
                        self._interpretations[event_id] = self.store.template_text(event_id)
                    cache[key] = event_id
                ids.append(event_id)
            grid.append(ids)
        return grid

    def interpret_events(self, event_ids: list[int] | None = None) -> int:
        """Phase 2 — ensure an interpretation for each event (LEI, §III-C).

        Returns the number of events interpreted in this call.  With the
        LLM disabled this falls back to the (already snapshotted) raw
        template text.
        """
        pending = [
            event_id
            for event_id in (self.store.event_ids if event_ids is None else event_ids)
            if event_id not in self._interpretations
        ]
        for event_id in pending:
            self._interpretations[event_id] = self._text_for_event(event_id)
        return len(pending)

    def embed_events(self, event_ids: list[int] | None = None) -> int:
        """Phase 3 — encode interpretations into the embedding table."""
        pending = [
            event_id
            for event_id in (self.store.event_ids if event_ids is None else event_ids)
            if event_id not in self._embeddings
        ]
        for event_id in pending:
            self._embeddings[event_id] = self.encoder.encode(
                self._interpretations[event_id]
            )
        return len(pending)

    def gather(self, grid: list[list[int]]) -> np.ndarray:
        """Assemble an event-id grid into ``(n, window, dim)`` embeddings."""
        if not grid:
            return np.zeros((0, 0, self.embedding_dim), dtype=np.float32)
        window = len(grid[0])
        out = np.zeros((len(grid), window, self.embedding_dim), dtype=np.float32)
        for row, ids in enumerate(grid):
            for col, event_id in enumerate(ids):
                out[row, col] = self._embeddings[event_id]
        return out

    def embed_message(self, message: str) -> np.ndarray:
        """Parse one message and return its event embedding."""
        parsed = self.store.ingest(message)
        return self._ensure_event(parsed.event_id)

    def event_id_of(self, message: str) -> int:
        """Parse one message and return its event id (embedding cached)."""
        parsed = self.store.ingest(message)
        self._ensure_event(parsed.event_id)
        return parsed.event_id

    # ------------------------------------------------------------------
    def embed_sequences(self, sequences: list[LogSequence]) -> np.ndarray:
        """Embed sequences into ``(n, window, dim)``.

        Message parsing is streamed in sequence order so Drain sees the
        same prefix behaviour as the offline pipeline.  Composes the
        phased API (parse -> interpret -> embed -> gather).
        """
        grid = self.parse_sequences(sequences)
        if not grid:
            return np.zeros((0, 0, self.embedding_dim), dtype=np.float32)
        distinct = sorted({event_id for ids in grid for event_id in ids})
        self.interpret_events(distinct)
        self.embed_events(distinct)
        return self.gather(grid)

    def embed_messages(self, messages: list[str]) -> np.ndarray:
        """Embed a flat window of messages into ``(len(messages), dim)``."""
        return np.stack([self.embed_message(m) for m in messages]) if messages else (
            np.zeros((0, self.embedding_dim), dtype=np.float32)
        )

    # ------------------------------------------------------------------
    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serializable state: (JSON-able metadata, embedding arrays).

        The Drain tree, representatives and interpretations go to JSON;
        the per-event embeddings go to an npz-style mapping keyed by
        event id.
        """
        meta = {
            "system": self.system,
            "store": self.store.to_dict(),
            "interpretations": {str(k): v for k, v in self._interpretations.items()},
        }
        arrays = {str(k): v for k, v in self._embeddings.items()}
        return meta, arrays

    @classmethod
    def from_state(cls, meta: dict, arrays: dict[str, np.ndarray],
                   encoder: SentenceEncoder, llm: LLMProvider | None) -> "SystemFeaturizer":
        """Rebuild a featurizer from :meth:`state` output."""
        featurizer = cls(meta["system"], encoder, llm=llm)
        featurizer.store = TemplateStore.from_dict(meta["store"])
        featurizer._interpretations = {
            int(k): v for k, v in meta["interpretations"].items()
        }
        featurizer._embeddings = {
            int(k): np.asarray(v, dtype=np.float32) for k, v in arrays.items()
        }
        return featurizer
