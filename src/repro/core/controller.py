"""Training controllers: callback hooks threaded through ``fit``.

A :class:`TrainingController` sees the trainer at well-defined points
(``on_fit_start`` → per epoch ``on_epoch_start`` → per batch
``on_step`` → ``on_epoch_end`` → ``on_fit_end``) and steers the run by
returning an action:

* :data:`CONTINUE` (or ``None``) — keep training.
* :data:`PAUSE` — halt *preserving* mid-epoch resume state: the
  trainer's epoch/step counters, shuffle order and partial loss sums
  stay in place, so a later ``fit`` (or a checkpoint written inside the
  hook) continues bit-exactly where the run stopped.
* :data:`STOP` — halt and discard the partial epoch: the run is over.

Hooks may also act imperatively — write a checkpoint through a
:class:`~repro.core.checkpoint.CheckpointStore` they own, or adjust the
learning rate via ``trainer.set_learning_rate`` (the LR is part of the
checkpointed optimizer state, so adjustments survive resume).

An exception escaping a hook marks the run failed
(``trainer.run_failed``) and surfaces as :class:`ControllerError`; the
trainer performs no further writes, so the last durable checkpoint is
untouched and remains the restart point.
"""

from __future__ import annotations

__all__ = [
    "CONTINUE", "PAUSE", "STOP",
    "ControllerError", "TrainingController", "ComposedController",
    "CheckpointEvery", "StopAfter", "LearningRateController", "compose",
]

CONTINUE = "continue"
PAUSE = "pause"
STOP = "stop"

# Ordering for ComposedController: the strongest requested action wins.
_STRENGTH = {None: 0, CONTINUE: 0, PAUSE: 1, STOP: 2}


class ControllerError(RuntimeError):
    """A controller callback raised; the training run is failed."""


class TrainingController:
    """Base controller: every hook is a no-op returning :data:`CONTINUE`.

    Subclass and override the hooks you need; any hook may return an
    action string (``None`` counts as :data:`CONTINUE`).
    """

    def on_fit_start(self, trainer) -> str | None:
        return None

    def on_epoch_start(self, trainer, epoch: int) -> str | None:
        return None

    def on_step(self, trainer, step: int) -> str | None:
        return None

    def on_epoch_end(self, trainer, epoch: int,
                     metrics: dict[str, float]) -> str | None:
        return None

    def on_fit_end(self, trainer, history) -> str | None:
        return None


class ComposedController(TrainingController):
    """Fans each hook out to child controllers in order.

    Every child runs on every hook (so a checkpoint controller listed
    before a kill-switch has written by the time the switch fires); the
    strongest action requested wins (STOP > PAUSE > CONTINUE).
    """

    def __init__(self, controllers):
        self.controllers = list(controllers)

    def _fan(self, hook: str, *args) -> str | None:
        strongest: str | None = None
        for controller in self.controllers:
            action = getattr(controller, hook)(*args)
            if _STRENGTH.get(action, 0) > _STRENGTH.get(strongest, 0):
                strongest = action
        return strongest

    def on_fit_start(self, trainer):
        return self._fan("on_fit_start", trainer)

    def on_epoch_start(self, trainer, epoch):
        return self._fan("on_epoch_start", trainer, epoch)

    def on_step(self, trainer, step):
        return self._fan("on_step", trainer, step)

    def on_epoch_end(self, trainer, epoch, metrics):
        return self._fan("on_epoch_end", trainer, epoch, metrics)

    def on_fit_end(self, trainer, history):
        return self._fan("on_fit_end", trainer, history)


def compose(controllers) -> TrainingController | None:
    """Collapse a controller list: ``None`` for empty, the sole element
    for singletons, a :class:`ComposedController` otherwise."""
    controllers = [c for c in controllers if c is not None]
    if not controllers:
        return None
    if len(controllers) == 1:
        return controllers[0]
    return ComposedController(controllers)


class CheckpointEvery(TrainingController):
    """Writes trainer checkpoints on a fixed cadence.

    ``epochs=k`` checkpoints after every k-th completed epoch;
    ``steps=m`` additionally checkpoints every m-th optimizer step
    (mid-epoch, capturing the shuffle order and partial sums).
    """

    def __init__(self, store, *, epochs: int | None = 1,
                 steps: int | None = None):
        if epochs is not None and epochs < 1:
            raise ValueError(f"epochs cadence must be >= 1, got {epochs}")
        if steps is not None and steps < 1:
            raise ValueError(f"steps cadence must be >= 1, got {steps}")
        self.store = store
        self.epochs = epochs
        self.steps = steps

    def _save(self, trainer) -> None:
        arrays, meta = trainer.checkpoint_state()
        self.store.save(arrays, meta)

    def on_step(self, trainer, step):
        if self.steps is not None and step % self.steps == 0:
            self._save(trainer)
        return None

    def on_epoch_end(self, trainer, epoch, metrics):
        if self.epochs is not None and (epoch + 1) % self.epochs == 0:
            self._save(trainer)
        return None


class StopAfter(TrainingController):
    """Halts after a fixed number of completed epochs or global steps.

    ``action`` defaults to :data:`PAUSE` (resumable); pass :data:`STOP`
    for a terminal halt.  Thresholds are absolute (global step / epoch
    ordinals), so the controller composes with resumed runs.
    """

    def __init__(self, *, epochs: int | None = None,
                 steps: int | None = None, action: str = PAUSE):
        if action not in (PAUSE, STOP):
            raise ValueError(f"action must be pause|stop, got {action!r}")
        self.epochs = epochs
        self.steps = steps
        self.action = action

    def on_step(self, trainer, step):
        if self.steps is not None and step >= self.steps:
            return self.action
        return None

    def on_epoch_end(self, trainer, epoch, metrics):
        if self.epochs is not None and epoch + 1 >= self.epochs:
            return self.action
        return None


class LearningRateController(TrainingController):
    """Applies ``schedule(epoch) -> lr`` to the main optimizer at each
    epoch start.  Deterministic under resume: the LR travels in the
    checkpoint and the schedule re-applies the same value."""

    def __init__(self, schedule):
        self.schedule = schedule

    def on_epoch_start(self, trainer, epoch):
        trainer.set_learning_rate(float(self.schedule(epoch)))
        return None
