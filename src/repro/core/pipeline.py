"""End-to-end LogSynergy facade.

``LogSynergy.fit`` takes labeled sequences from several source systems
plus a small labeled slice of the target system, runs the full offline
pipeline (Drain parsing -> LEI -> event embedding -> SUFE/DAAN training),
and produces a detector for the target system.  ``predict`` /
``predict_proba`` evaluate target sequences; ``detect_stream`` runs the
§III-E online path over a raw message window and emits an
:class:`~repro.core.report.AnomalyReport`.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np

from ..config import LogSynergyConfig
from ..embedding.pretrained import load_pretrained_encoder
from ..embedding.encoder import SentenceEncoder
from ..llm.interface import LLMClient
from ..llm.simulated import SimulatedLLM
from ..logs.sequences import LogSequence
from .features import SystemFeaturizer
from .model import LogSynergyModel
from .report import AnomalyReport, build_report
from .trainer import LogSynergyTrainer, TrainingBatch, TrainingHistory

__all__ = ["LogSynergy"]


class LogSynergy:
    """The paper's full method behind a scikit-learn-ish interface.

    Parameters
    ----------
    config:
        Model/training hyperparameters (defaults to the reduced CPU scale).
    llm:
        LLM client for LEI.  Defaults to :class:`SimulatedLLM`; pass
        ``None`` **and** ``use_lei=False`` explicitly for the ablation.
    encoder:
        Sentence encoder; defaults to the cached pre-trained domain encoder
        with ``config.embedding_dim`` dimensions.
    use_lei / use_sufe / use_da:
        Ablation switches for Fig 5.
    """

    def __init__(self, config: LogSynergyConfig | None = None,
                 llm: LLMClient | None = None,
                 encoder: SentenceEncoder | None = None,
                 use_lei: bool = True, use_sufe: bool = True, use_da: bool = True):
        self.config = config or LogSynergyConfig()
        self.encoder = encoder or load_pretrained_encoder(self.config.embedding_dim)
        if self.encoder.dim != self.config.embedding_dim:
            raise ValueError(
                f"encoder dim {self.encoder.dim} != config.embedding_dim "
                f"{self.config.embedding_dim}"
            )
        self.use_lei = use_lei
        self.use_sufe = use_sufe
        self.use_da = use_da
        self.llm = (llm or SimulatedLLM(seed=self.config.seed)) if use_lei else None
        self._featurizers: dict[str, SystemFeaturizer] = {}
        self._system_index: dict[str, int] = {}
        self.target_system: str | None = None
        self.model: LogSynergyModel | None = None
        self.trainer: LogSynergyTrainer | None = None
        self.history: TrainingHistory | None = None

    # ------------------------------------------------------------------
    def _featurizer(self, system: str) -> SystemFeaturizer:
        featurizer = self._featurizers.get(system)
        if featurizer is None:
            featurizer = SystemFeaturizer(system, self.encoder, llm=self.llm)
            self._featurizers[system] = featurizer
        return featurizer

    def _assemble(self, sources: dict[str, list[LogSequence]],
                  target_system: str, target_sequences: list[LogSequence]) -> TrainingBatch:
        systems = list(sources) + [target_system]
        self._system_index = {name: i for i, name in enumerate(systems)}

        blocks, anomaly, system_ids, domain = [], [], [], []
        for name, sequences in sources.items():
            if not sequences:
                raise ValueError(f"source system {name!r} contributed no sequences")
            embedded = self._featurizer(name).embed_sequences(sequences)
            blocks.append(embedded)
            anomaly.append(np.array([s.label for s in sequences], dtype=np.int64))
            system_ids.append(np.full(len(sequences), self._system_index[name], dtype=np.int64))
            domain.append(np.zeros(len(sequences), dtype=np.int64))

        if not target_sequences:
            raise ValueError("target system contributed no sequences")
        target_embedded = self._featurizer(target_system).embed_sequences(target_sequences)
        # Oversample the target so DAAN sees both domains in every batch;
        # the paper trains on n_s >> n_t and this is the standard remedy.
        mean_source = int(np.mean([len(b) for b in blocks]))
        repeats = max(1, mean_source // max(1, len(target_sequences)))
        target_labels = np.array([s.label for s in target_sequences], dtype=np.int64)
        blocks.append(np.repeat(target_embedded, repeats, axis=0))
        anomaly.append(np.repeat(target_labels, repeats))
        n_target = len(target_sequences) * repeats
        system_ids.append(np.full(n_target, self._system_index[target_system], dtype=np.int64))
        domain.append(np.ones(n_target, dtype=np.int64))

        return TrainingBatch(
            sequences=np.concatenate(blocks, axis=0),
            anomaly_labels=np.concatenate(anomaly),
            system_labels=np.concatenate(system_ids),
            domain_labels=np.concatenate(domain),
        )

    # ------------------------------------------------------------------
    def fit(self, sources: dict[str, list[LogSequence]], target_system: str,
            target_sequences: list[LogSequence], epochs: int | None = None,
            verbose: bool = False) -> "LogSynergy":
        """Run the offline phase: featurize all systems and train the model."""
        if target_system in sources:
            raise ValueError(f"{target_system!r} appears in both sources and target")
        self.target_system = target_system
        data = self._assemble(sources, target_system, target_sequences)
        self.model = LogSynergyModel(
            self.config, num_systems=len(sources) + 1,
            rng=np.random.default_rng(self.config.seed),
        )
        self.trainer = LogSynergyTrainer(
            self.model, self.config, use_sufe=self.use_sufe, use_da=self.use_da
        )
        self.history = self.trainer.fit(data, epochs=epochs, verbose=verbose)
        return self

    def _require_fitted(self) -> LogSynergyModel:
        if self.model is None or self.target_system is None:
            raise RuntimeError("LogSynergy.fit must be called before prediction")
        return self.model

    def predict_proba(self, sequences: list[LogSequence]) -> np.ndarray:
        """Anomaly probabilities for target-system sequences."""
        model = self._require_fitted()
        if not sequences:
            return np.zeros(0, dtype=np.float32)
        embedded = self._featurizer(self.target_system).embed_sequences(sequences)
        return model.predict_proba(embedded)

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Binary anomaly predictions at the configured threshold (0.5)."""
        return (self.predict_proba(sequences) > self.config.threshold).astype(np.int64)

    # ------------------------------------------------------------------
    # Pipeline persistence: weights + Drain trees + interpretations +
    # event embeddings, so a restarted service keeps stable event ids and
    # needs no LLM re-interpretation.
    # ------------------------------------------------------------------
    def save_pipeline(self, directory: str) -> None:
        """Persist the fitted pipeline to ``directory``."""
        import dataclasses
        import json
        from pathlib import Path

        model = self._require_fitted()
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        model.save(str(root / "model.npz"))

        featurizer_meta = {}
        for name, featurizer in self._featurizers.items():
            meta, arrays = featurizer.state()
            featurizer_meta[name] = meta
            if arrays:
                np.savez(root / f"embeddings_{name}.npz", **arrays)

        manifest = {
            "config": dataclasses.asdict(self.config),
            "target_system": self.target_system,
            "system_index": self._system_index,
            "num_systems": model.num_systems,
            "use_lei": self.use_lei,
            "use_sufe": self.use_sufe,
            "use_da": self.use_da,
            "featurizers": featurizer_meta,
        }
        (root / "pipeline.json").write_text(json.dumps(manifest), encoding="utf-8")

    @classmethod
    def load_pipeline(cls, directory: str, llm: LLMClient | None = None,
                      encoder: SentenceEncoder | None = None) -> "LogSynergy":
        """Restore a pipeline saved with :meth:`save_pipeline`.

        ``llm``/``encoder`` default to the same choices the constructor
        makes; pass the production client to keep interpreting new events
        online.
        """
        import json
        from pathlib import Path

        from ..config import LogSynergyConfig
        from .features import SystemFeaturizer
        from .model import LogSynergyModel

        root = Path(directory)
        manifest = json.loads((root / "pipeline.json").read_text(encoding="utf-8"))
        config = LogSynergyConfig(**manifest["config"])
        pipeline = cls(config, llm=llm, encoder=encoder,
                       use_lei=manifest["use_lei"], use_sufe=manifest["use_sufe"],
                       use_da=manifest["use_da"])
        pipeline.target_system = manifest["target_system"]
        pipeline._system_index = dict(manifest["system_index"])
        pipeline.model = LogSynergyModel(
            config, num_systems=manifest["num_systems"],
            rng=np.random.default_rng(config.seed),
        )
        pipeline.model.load(str(root / "model.npz"))
        for name, meta in manifest["featurizers"].items():
            arrays: dict[str, np.ndarray] = {}
            npz_path = root / f"embeddings_{name}.npz"
            if npz_path.exists():
                with np.load(npz_path) as archive:
                    arrays = {k: archive[k] for k in archive.files}
            pipeline._featurizers[name] = SystemFeaturizer.from_state(
                meta, arrays, pipeline.encoder, pipeline.llm
            )
        return pipeline

    # ------------------------------------------------------------------
    def detect_stream(self, messages: list[str],
                      timestamps: list[datetime] | None = None) -> AnomalyReport:
        """Online path (§III-E): score one raw message window, build a report."""
        model = self._require_fitted()
        featurizer = self._featurizer(self.target_system)
        window = featurizer.embed_messages(messages)
        probability = float(model.predict_proba(window[None, :, :])[0])
        interpretations = [
            featurizer.interpretation_of(featurizer.event_id_of(m)) if self.use_lei
            else featurizer.store.ingest(m).template_text
            for m in messages
        ]
        return build_report(
            system=self.target_system,
            score=probability,
            threshold=self.config.threshold,
            messages=messages,
            interpretations=interpretations,
            timestamps=timestamps,
        )
