"""End-to-end LogSynergy facade.

``LogSynergy.fit`` takes labeled sequences from several source systems
plus a small labeled slice of the target system, runs the full offline
pipeline (Drain parsing -> LEI -> event embedding -> SUFE/DAAN training),
and produces a detector for the target system.  ``predict`` /
``predict_proba`` are batch-first: they accept a single
:class:`~repro.logs.sequences.LogSequence` or a list of them.
``detect_stream`` / ``detect_stream_batch`` run the §III-E online path
over raw message windows and emit :class:`~repro.core.report.AnomalyReport`s.

The offline pipeline reports one span per stage (``fit.parse``,
``fit.interpret``, ``fit.embed``, ``fit.train``) through ``repro.obs``
when an observability registry is installed.
"""

from __future__ import annotations

import warnings
from datetime import datetime
from typing import Sequence

import numpy as np

from ..config import LogSynergyConfig
from ..embedding.pretrained import load_pretrained_encoder
from ..embedding.encoder import SentenceEncoder
from ..llm.factory import default_provider
from ..llm.providers import LLMProvider
from ..logs.sequences import LogSequence
from ..obs import trace
from .features import SystemFeaturizer
from .model import LogSynergyModel
from .report import AnomalyReport, build_report
from .trainer import LogSynergyTrainer, TrainingBatch, TrainingHistory

__all__ = ["LogSynergy"]

_DEPRECATED_SWITCHES = ("use_lei", "use_sufe", "use_da")


class LogSynergy:
    """The paper's full method behind a scikit-learn-ish interface.

    Parameters
    ----------
    config:
        Model/training hyperparameters (defaults to the reduced CPU
        scale).  The Fig 5 ablation switches live here:
        ``config.use_lei`` / ``config.use_sufe`` / ``config.use_da``.
    llm:
        LLM provider for LEI.  Defaults to :func:`default_provider`; ignored
        when ``config.use_lei`` is false.
    encoder:
        Sentence encoder; defaults to the cached pre-trained domain encoder
        with ``config.embedding_dim`` dimensions.
    use_lei / use_sufe / use_da:
        Deprecated constructor aliases for the config fields; they warn
        and forward into ``config``.
    """

    def __init__(self, config: LogSynergyConfig | None = None,
                 llm: LLMProvider | None = None,
                 encoder: SentenceEncoder | None = None,
                 use_lei: bool | None = None, use_sufe: bool | None = None,
                 use_da: bool | None = None):
        config = config or LogSynergyConfig()
        overrides = {
            name: value
            for name, value in zip(_DEPRECATED_SWITCHES, (use_lei, use_sufe, use_da))
            if value is not None
        }
        if overrides:
            warnings.warn(
                "LogSynergy(use_lei=..., use_sufe=..., use_da=...) is deprecated; "
                "set the flags on LogSynergyConfig (e.g. "
                "config.with_overrides(use_lei=False)) instead",
                DeprecationWarning, stacklevel=2,
            )
            config = config.with_overrides(**overrides)
        self.config = config
        self.encoder = encoder or load_pretrained_encoder(self.config.embedding_dim)
        if self.encoder.dim != self.config.embedding_dim:
            raise ValueError(
                f"encoder dim {self.encoder.dim} != config.embedding_dim "
                f"{self.config.embedding_dim}"
            )
        if not self.config.use_lei:
            self.llm = None
        elif llm is not None:
            # `is not None`, not truthiness: an empty CachedLLM has len() 0.
            self.llm = llm
        else:
            self.llm = default_provider(seed=self.config.seed)
        self._featurizers: dict[str, SystemFeaturizer] = {}
        self._system_index: dict[str, int] = {}
        self.target_system: str | None = None
        self.model: LogSynergyModel | None = None
        self.trainer: LogSynergyTrainer | None = None
        self.history: TrainingHistory | None = None

    # -- ablation switches (read-only views of the config) --------------
    @property
    def use_lei(self) -> bool:
        return self.config.use_lei

    @property
    def use_sufe(self) -> bool:
        return self.config.use_sufe

    @property
    def use_da(self) -> bool:
        return self.config.use_da

    # ------------------------------------------------------------------
    def _featurizer(self, system: str) -> SystemFeaturizer:
        featurizer = self._featurizers.get(system)
        if featurizer is None:
            featurizer = SystemFeaturizer(system, self.encoder, llm=self.llm)
            self._featurizers[system] = featurizer
        return featurizer

    def _assemble(self, sources: dict[str, list[LogSequence]],
                  target_system: str, target_sequences: list[LogSequence]) -> TrainingBatch:
        systems = list(sources) + [target_system]
        self._system_index = {name: i for i, name in enumerate(systems)}

        # Stage 1 — Drain parsing, all systems (streamed in sequence order).
        grids: dict[str, list[list[int]]] = {}
        with trace("fit.parse", systems=len(systems)):
            for name, sequences in sources.items():
                if not sequences:
                    raise ValueError(f"source system {name!r} contributed no sequences")
                grids[name] = self._featurizer(name).parse_sequences(sequences)
            if not target_sequences:
                raise ValueError("target system contributed no sequences")
            grids[target_system] = self._featurizer(target_system).parse_sequences(
                target_sequences
            )

        # Stage 2 — LEI interpretation (one LLM call per distinct event).
        with trace("fit.interpret") as span:
            interpreted = sum(
                self._featurizer(name).interpret_events() for name in systems
            )
            span.set("events", interpreted)

        # Stage 3 — event embedding and batch assembly.
        with trace("fit.embed") as span:
            embedded_events = sum(
                self._featurizer(name).embed_events() for name in systems
            )
            span.set("events", embedded_events)

            blocks, anomaly, system_ids, domain = [], [], [], []
            for name, sequences in sources.items():
                embedded = self._featurizer(name).gather(grids[name])
                blocks.append(embedded)
                anomaly.append(np.array([s.label for s in sequences], dtype=np.int64))
                system_ids.append(
                    np.full(len(sequences), self._system_index[name], dtype=np.int64)
                )
                domain.append(np.zeros(len(sequences), dtype=np.int64))

            target_embedded = self._featurizer(target_system).gather(grids[target_system])
            # Oversample the target so DAAN sees both domains in every batch;
            # the paper trains on n_s >> n_t and this is the standard remedy.
            mean_source = int(np.mean([len(b) for b in blocks]))
            repeats = max(1, mean_source // max(1, len(target_sequences)))
            target_labels = np.array([s.label for s in target_sequences], dtype=np.int64)
            blocks.append(np.repeat(target_embedded, repeats, axis=0))
            anomaly.append(np.repeat(target_labels, repeats))
            n_target = len(target_sequences) * repeats
            system_ids.append(
                np.full(n_target, self._system_index[target_system], dtype=np.int64)
            )
            domain.append(np.ones(n_target, dtype=np.int64))

        return TrainingBatch(
            sequences=np.concatenate(blocks, axis=0),
            anomaly_labels=np.concatenate(anomaly),
            system_labels=np.concatenate(system_ids),
            domain_labels=np.concatenate(domain),
        )

    # ------------------------------------------------------------------
    def fit(self, sources: dict[str, list[LogSequence]], target_system: str,
            target_sequences: list[LogSequence], epochs: int | None = None,
            verbose: bool = False, controller=None, store=None,
            resume: bool = False) -> "LogSynergy":
        """Run the offline phase: featurize all systems and train the model.

        ``controller`` is an optional
        :class:`~repro.core.controller.TrainingController` threaded into
        the trainer's fit loop.  With ``store`` (a
        :class:`~repro.core.checkpoint.CheckpointStore`) and
        ``resume=True``, the trainer restores the newest verifiable
        checkpoint before training and only runs the remaining epochs;
        featurization is deterministic, so the rebuilt batch matches the
        one the interrupted run saw.
        """
        if target_system in sources:
            raise ValueError(f"{target_system!r} appears in both sources and target")
        self.target_system = target_system
        total_epochs = epochs if epochs is not None else self.config.epochs
        with trace("fit", target=target_system, sources=len(sources)):
            data = self._assemble(sources, target_system, target_sequences)
            with trace("fit.train", samples=len(data.anomaly_labels)):
                self.model = LogSynergyModel(
                    self.config, num_systems=len(sources) + 1,
                    rng=np.random.default_rng(self.config.seed),
                )
                self.trainer = LogSynergyTrainer(self.model, self.config)
                if store is not None and resume:
                    self.trainer.resume_from(store)
                remaining = max(0, total_epochs - self.trainer.completed_epochs)
                self.history = self.trainer.fit(
                    data, epochs=remaining, verbose=verbose,
                    controller=controller,
                )
        return self

    def _require_fitted(self) -> LogSynergyModel:
        if self.model is None or self.target_system is None:
            raise RuntimeError("LogSynergy.fit must be called before prediction")
        return self.model

    def predict_proba(
        self, sequences: LogSequence | Sequence[LogSequence]
    ) -> float | np.ndarray:
        """Anomaly probabilities for target-system sequences.

        Batch-first: a list of sequences returns a float ``np.ndarray``
        of shape ``(len(sequences),)``; a single :class:`LogSequence`
        returns a plain ``float``.
        """
        model = self._require_fitted()
        single = isinstance(sequences, LogSequence)
        batch = [sequences] if single else list(sequences)
        if not batch:
            return np.zeros(0, dtype=np.float32)
        embedded = self._featurizer(self.target_system).embed_sequences(batch)
        probabilities = model.predict_proba(embedded)
        return float(probabilities[0]) if single else probabilities

    def predict(
        self, sequences: LogSequence | Sequence[LogSequence]
    ) -> int | np.ndarray:
        """Binary anomaly predictions at the configured threshold.

        Batch-first like :meth:`predict_proba`: returns an ``int64``
        array for a list input, a plain ``int`` for a single sequence.
        """
        probabilities = self.predict_proba(sequences)
        if isinstance(probabilities, float):
            return int(probabilities > self.config.threshold)
        return (probabilities > self.config.threshold).astype(np.int64)

    # ------------------------------------------------------------------
    # Pipeline persistence: weights + Drain trees + interpretations +
    # event embeddings, so a restarted service keeps stable event ids and
    # needs no LLM re-interpretation.
    # ------------------------------------------------------------------
    def save_pipeline(self, directory: str) -> None:
        """Persist the fitted pipeline to ``directory``."""
        import dataclasses
        import json
        from pathlib import Path

        model = self._require_fitted()
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        model.save(str(root / "model.npz"))

        featurizer_meta = {}
        for name, featurizer in self._featurizers.items():
            meta, arrays = featurizer.state()
            featurizer_meta[name] = meta
            if arrays:
                np.savez(root / f"embeddings_{name}.npz", **arrays)

        manifest = {
            "config": dataclasses.asdict(self.config),
            "target_system": self.target_system,
            "system_index": self._system_index,
            "num_systems": model.num_systems,
            # Redundant with config.*, kept so older readers still work.
            "use_lei": self.use_lei,
            "use_sufe": self.use_sufe,
            "use_da": self.use_da,
            "featurizers": featurizer_meta,
        }
        (root / "pipeline.json").write_text(json.dumps(manifest), encoding="utf-8")

    @classmethod
    def load_pipeline(cls, directory: str, llm: LLMProvider | None = None,
                      encoder: SentenceEncoder | None = None) -> "LogSynergy":
        """Restore a pipeline saved with :meth:`save_pipeline`.

        ``llm``/``encoder`` default to the same choices the constructor
        makes; pass the production client to keep interpreting new events
        online.
        """
        import json
        from pathlib import Path

        from ..config import LogSynergyConfig
        from .features import SystemFeaturizer
        from .model import LogSynergyModel

        root = Path(directory)
        manifest = json.loads((root / "pipeline.json").read_text(encoding="utf-8"))
        config = LogSynergyConfig(**manifest["config"])
        # Manifests written before the switches moved into the config carry
        # them only at the top level; fold those in without the shim warning.
        config = config.with_overrides(
            use_lei=manifest.get("use_lei", config.use_lei),
            use_sufe=manifest.get("use_sufe", config.use_sufe),
            use_da=manifest.get("use_da", config.use_da),
        )
        pipeline = cls(config, llm=llm, encoder=encoder)
        pipeline.target_system = manifest["target_system"]
        pipeline._system_index = dict(manifest["system_index"])
        pipeline.model = LogSynergyModel(
            config, num_systems=manifest["num_systems"],
            rng=np.random.default_rng(config.seed),
        )
        pipeline.model.load(str(root / "model.npz"))
        for name, meta in manifest["featurizers"].items():
            arrays: dict[str, np.ndarray] = {}
            npz_path = root / f"embeddings_{name}.npz"
            if npz_path.exists():
                with np.load(npz_path) as archive:
                    arrays = {k: archive[k] for k in archive.files}
            pipeline._featurizers[name] = SystemFeaturizer.from_state(
                meta, arrays, pipeline.encoder, pipeline.llm
            )
        return pipeline

    # ------------------------------------------------------------------
    def detect_stream(self, messages: list[str],
                      timestamps: list[datetime] | None = None) -> AnomalyReport:
        """Online path (§III-E): score one raw message window, build a report."""
        return self.detect_stream_batch(
            [messages], [timestamps] if timestamps is not None else None
        )[0]

    def detect_stream_batch(
        self, windows: list[list[str]],
        timestamps: list[list[datetime] | None] | None = None,
    ) -> list[AnomalyReport]:
        """Batch variant of :meth:`detect_stream`: one model call per
        window-length group instead of one per window.

        ``timestamps``, when given, must be parallel to ``windows``.
        Returns one report per window, in input order.
        """
        model = self._require_fitted()
        if timestamps is not None and len(timestamps) != len(windows):
            raise ValueError(
                f"timestamps batch has {len(timestamps)} entries for "
                f"{len(windows)} windows"
            )
        if not windows:
            return []
        featurizer = self._featurizer(self.target_system)
        with trace("detect.batch", windows=len(windows)):
            embedded = [featurizer.embed_messages(w) for w in windows]
            scores = np.zeros(len(windows), dtype=np.float64)
            by_length: dict[int, list[int]] = {}
            for index, window in enumerate(embedded):
                by_length.setdefault(window.shape[0], []).append(index)
            for indices in by_length.values():
                batch = np.stack([embedded[i] for i in indices])
                probabilities = model.predict_proba(batch)
                for i, probability in zip(indices, probabilities):
                    scores[i] = float(probability)

            reports: list[AnomalyReport] = []
            for index, messages in enumerate(windows):
                interpretations = [
                    featurizer.interpretation_of(featurizer.event_id_of(m))
                    if self.use_lei else featurizer.store.ingest(m).template_text
                    for m in messages
                ]
                reports.append(build_report(
                    system=self.target_system,
                    score=float(scores[index]),
                    threshold=self.config.threshold,
                    messages=messages,
                    interpretations=interpretations,
                    timestamps=timestamps[index] if timestamps is not None else None,
                ))
        return reports
