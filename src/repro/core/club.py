"""CLUB: Contrastive Log-ratio Upper Bound of mutual information (Cheng et al., 2020).

SUFE minimizes the mutual information between system-unified features
``F_u(x)`` and system-specific features ``F_s(x)`` (Eq. 3).  CLUB bounds
``MI(u, s)`` from above by

    E_{p(u,s)}[log q(s|u)] - E_{p(u)p(s)}[log q(s|u)]

where ``q(s|u)`` is a variational Gaussian whose mean and log-variance are
produced by a small MLP.  Training alternates: the estimator maximizes the
likelihood of true (u, s) pairs; the main model minimizes the bound.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import kernels
from ..nn.tensor import Tensor

__all__ = ["CLUBEstimator"]


class CLUBEstimator(nn.Module):
    """Variational network estimating an MI upper bound between two features."""

    def __init__(self, u_dim: int, s_dim: int, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.mu_net = nn.Sequential(
            nn.Linear(u_dim, hidden_dim, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden_dim, s_dim, rng=rng),
        )
        self.logvar_net = nn.Sequential(
            nn.Linear(u_dim, hidden_dim, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden_dim, s_dim, rng=rng),
            nn.Tanh(),  # bound log-variance for stability
        )

    def _conditional_log_likelihood(self, u: Tensor, s: Tensor) -> Tensor:
        """Per-sample ``log q(s|u)`` (up to the constant term)."""
        mu = self.mu_net(u)
        logvar = self.logvar_net(u)
        if kernels.fused_kernels_enabled():
            return kernels.gaussian_log_likelihood(s, mu, logvar)
        diff = s - mu
        return (-(diff * diff) / (logvar.exp() * 2.0) - logvar * 0.5).sum(axis=-1)

    def learning_loss(self, u: Tensor, s: Tensor) -> Tensor:
        """Estimator's own objective: maximize likelihood of true pairs."""
        return -self._conditional_log_likelihood(u, s).mean()

    def mi_upper_bound(self, u: Tensor, s: Tensor,
                       rng: np.random.Generator | None = None) -> Tensor:
        """CLUB bound used as ``L_MI`` by the main model (Eq. 3).

        Negative samples pair each ``u_i`` with a shuffled ``s_j``.
        """
        rng = rng or np.random.default_rng(0)
        positive = self._conditional_log_likelihood(u, s)
        permutation = rng.permutation(len(s.data))
        negative = self._conditional_log_likelihood(u, s[permutation])
        return (positive - negative).mean()
