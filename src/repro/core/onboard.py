"""Live onboarding: warm-start fine-tuning behind a shadow-F1 gate.

The paper's premise is bringing *new* software systems online cheaply:
warm-start from the fitted multi-system model and fine-tune on the
trickle of day-0 logs while the runtime keeps serving the old weights.
:class:`OnboardingSession` implements that as a small state machine:

``IDLE -> FINE_TUNING -> SHADOW -> PROMOTED | REJECTED``

* **FINE_TUNING** — a *candidate* model (a fresh
  :class:`~repro.core.model.LogSynergyModel` loaded from the serving
  weights) is fine-tuned on the head of the day-0 sequences.  The
  serving pipeline is never touched: a crash anywhere in this phase —
  including inside a checkpoint write — leaves the old weights serving.
* **SHADOW** — the candidate is evaluated on the held-out tail of the
  stream (windows the fine-tune never saw); its F1 at the configured
  threshold is the shadow score.
* **PROMOTED** — only when the shadow F1 clears ``gate_f1`` does the
  candidate state reach the serving path: first the runtime's hot swap
  (:meth:`~repro.runtime.engine.InferenceRuntime.swap_weights`, which
  re-broadcasts under the process executor), then the local pipeline.
* **REJECTED** — below the gate nothing is swapped or broadcast; the
  candidate is discarded and the old weights keep serving.

Fine-tuning itself is resumable: pass a
:class:`~repro.core.checkpoint.CheckpointStore` to checkpoint each
epoch, and ``resume=True`` to continue an interrupted session from the
newest verifiable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_registry, trace
from .checkpoint import CheckpointStore
from .controller import CheckpointEvery, TrainingController, compose
from .model import LogSynergyModel
from .trainer import LogSynergyTrainer, TrainingBatch, TrainingHistory

__all__ = [
    "OnboardingResult", "OnboardingSession",
    "IDLE", "FINE_TUNING", "SHADOW", "PROMOTED", "REJECTED",
]

IDLE = "idle"
FINE_TUNING = "fine-tuning"
SHADOW = "shadow"
PROMOTED = "promoted"
REJECTED = "rejected"


@dataclass(frozen=True)
class OnboardingResult:
    """Outcome of one onboarding run."""

    state: str                      # PROMOTED or REJECTED
    shadow_f1: float
    gate_f1: float
    epochs: int                     # epochs the fine-tune actually ran
    train_sequences: int
    holdout_sequences: int
    history: TrainingHistory

    @property
    def promoted(self) -> bool:
        return self.state == PROMOTED


class OnboardingSession:
    """Fine-tune a candidate on day-0 sequences; promote past a gate.

    Parameters
    ----------
    pipeline:
        The fitted :class:`~repro.core.pipeline.LogSynergy` whose
        weights currently serve.  Promotion loads the candidate state
        into ``pipeline.model`` (after the runtime swap, if any).
    runtime:
        Optional live :class:`~repro.runtime.engine.InferenceRuntime`
        serving the old weights; on promotion it receives the candidate
        state via its hot swap before the local pipeline is updated.
    gate_f1:
        Minimum shadow F1 for promotion.  A holdout with no anomalous
        windows scores 0.0 and is always rejected — a deliberate bias:
        without positive shadow evidence the old weights keep serving.
    holdout_fraction:
        Tail fraction of the sequences reserved for shadow evaluation
        (never seen by the fine-tune).
    """

    def __init__(self, pipeline, *, runtime=None, gate_f1: float = 0.6,
                 holdout_fraction: float = 0.5):
        if pipeline.model is None or pipeline.target_system is None:
            raise ValueError("onboarding requires a fitted pipeline")
        if not 0.0 <= gate_f1 <= 1.0:
            raise ValueError(f"gate_f1 must be in [0, 1], got {gate_f1}")
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError(
                f"holdout_fraction must be in (0, 1), got {holdout_fraction}")
        self.pipeline = pipeline
        self.runtime = runtime
        self.gate_f1 = float(gate_f1)
        self.holdout_fraction = float(holdout_fraction)
        self.state = IDLE
        registry = get_registry()
        self._promoted = registry.counter("onboard.promoted")
        self._rejected = registry.counter("onboard.rejected")
        self._shadow_gauge = registry.gauge("onboard.shadow_f1")

    # ------------------------------------------------------------------
    def _split(self, sequences: list) -> tuple[list, list]:
        holdout = max(1, int(round(len(sequences) * self.holdout_fraction)))
        if holdout >= len(sequences):
            raise ValueError(
                f"{len(sequences)} sequences leave no training data after "
                f"a {self.holdout_fraction:.0%} holdout")
        return sequences[:-holdout], sequences[-holdout:]

    def _system_id(self, system: str) -> int:
        # A genuinely new system has no classifier slot of its own (the
        # head's width is fixed at fit time); it takes over the target
        # slot — onboarding *is* re-targeting the transfer pipeline.
        index = self.pipeline._system_index
        return index.get(system, index[self.pipeline.target_system])

    def _batch(self, system: str, sequences: list) -> TrainingBatch:
        featurizer = self.pipeline._featurizer(system)
        embedded = featurizer.embed_sequences(sequences)
        n = len(sequences)
        return TrainingBatch(
            sequences=embedded,
            anomaly_labels=np.array([s.label for s in sequences],
                                    dtype=np.int64),
            system_labels=np.full(n, self._system_id(system),
                                  dtype=np.int64),
            # Single-domain batches: the trainer's DAAN guard skips
            # adversarial alignment when only one domain is present.
            domain_labels=np.ones(n, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def run(self, system: str, sequences: list, *,
            epochs: int | None = None,
            controller: TrainingController | None = None,
            store: CheckpointStore | None = None,
            resume: bool = False) -> OnboardingResult:
        """Fine-tune on ``sequences`` from ``system`` and maybe promote.

        ``store`` checkpoints the *candidate* trainer every epoch (and
        is what ``resume=True`` restores from); the serving weights are
        never written, so no crash here can demote them.
        """
        config = self.pipeline.config
        total_epochs = epochs if epochs is not None else config.epochs
        train, holdout = self._split(list(sequences))
        with trace("onboard", system=system, sequences=len(sequences)):
            self.state = FINE_TUNING
            candidate = LogSynergyModel(
                config, num_systems=self.pipeline.model.num_systems,
                rng=np.random.default_rng(config.seed),
            )
            candidate.load_state_dict(self.pipeline.model.state_dict())
            trainer = LogSynergyTrainer(candidate, config)
            if store is not None and resume:
                trainer.resume_from(store)
            checkpointer = CheckpointEvery(store) if store is not None else None
            batch = self._batch(system, train)
            remaining = max(0, total_epochs - trainer.completed_epochs)
            history = trainer.fit(
                batch, epochs=remaining,
                controller=compose([checkpointer, controller]),
            )

            self.state = SHADOW
            holdout_batch = self._batch(system, holdout)
            probabilities = candidate.predict_proba(holdout_batch.sequences)
            predictions = (probabilities > config.threshold).astype(np.int64)
            # Local import: evaluation composes over core, not the
            # other way around, so keep the cycle out of module scope.
            from ..evaluation.metrics import binary_metrics

            shadow_f1 = binary_metrics(
                holdout_batch.anomaly_labels, predictions).f1
            self._shadow_gauge.set(shadow_f1)

            if shadow_f1 >= self.gate_f1:
                state = candidate.state_dict()
                if self.runtime is not None:
                    self.runtime.swap_weights(state)
                self.pipeline.model.load_state_dict(state)
                self.state = PROMOTED
                self._promoted.inc()
            else:
                self.state = REJECTED
                self._rejected.inc()
        return OnboardingResult(
            state=self.state, shadow_f1=float(shadow_f1),
            gate_f1=self.gate_f1, epochs=trainer.completed_epochs,
            train_sequences=len(train), holdout_sequences=len(holdout),
            history=history,
        )
