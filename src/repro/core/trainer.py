"""Offline training loop implementing Eq. 5 (§III-D4).

Per batch the trainer alternates two phases:

1. *Estimator phase* — the CLUB network maximizes the likelihood of the
   current (F_u, F_s) pairs (features detached).
2. *Main phase* — the model minimizes
   ``L = L_anomaly + L_system + λ_MI · L_MI + λ_DA · L_DA``
   where ``L_MI`` is CLUB's upper bound and ``L_DA`` is the DAAN loss
   with GRL alpha scheduled over training progress.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..config import LogSynergyConfig
from ..nn.tensor import Tensor
from ..obs import get_registry
from ..testing.faultpoints import fault_point
from .club import CLUBEstimator
from .controller import CONTINUE, PAUSE, STOP, ControllerError
from .daan import DAANModule
from .model import LogSynergyModel

__all__ = ["TrainingBatch", "TrainingHistory", "LogSynergyTrainer"]


@dataclass(frozen=True)
class TrainingBatch:
    """One mini-batch of training data.

    ``sequences``: (batch, window, embedding_dim) float32,
    ``anomaly_labels``: (batch,) in {0, 1},
    ``system_labels``: (batch,) in [0, num_systems),
    ``domain_labels``: (batch,) in {0 source, 1 target}.
    """

    sequences: np.ndarray
    anomaly_labels: np.ndarray
    system_labels: np.ndarray
    domain_labels: np.ndarray


@dataclass
class TrainingHistory:
    """Per-epoch loss traces for inspection and tests."""

    total: list[float] = field(default_factory=list)
    anomaly: list[float] = field(default_factory=list)
    system: list[float] = field(default_factory=list)
    mutual_information: list[float] = field(default_factory=list)
    domain_adaptation: list[float] = field(default_factory=list)

    def last(self) -> dict[str, float]:
        return {
            "total": self.total[-1],
            "anomaly": self.anomaly[-1],
            "system": self.system[-1],
            "mi": self.mutual_information[-1],
            "da": self.domain_adaptation[-1],
        }


class LogSynergyTrainer:
    """Trains a :class:`LogSynergyModel` with SUFE + DAAN objectives.

    Setting ``use_sufe=False`` reproduces the "LogSynergy w/o SUFE"
    ablation (no system classifier, no MI minimization); domain adaptation
    can likewise be disabled for ablations via ``use_da=False``.
    """

    def __init__(self, model: LogSynergyModel, config: LogSynergyConfig | None = None,
                 use_sufe: bool | None = None, use_da: bool | None = None,
                 pos_weight: float | None = None, skip_nonfinite: bool = True):
        self.model = model
        self.config = config or model.config
        self.use_sufe = self.config.use_sufe if use_sufe is None else use_sufe
        self.use_da = self.config.use_da if use_da is None else use_da
        self.pos_weight = pos_weight
        # Guard against NaN/Inf batch losses (bad batch, numeric blow-up):
        # skip the optimizer step instead of poisoning every parameter.
        self.skip_nonfinite = skip_nonfinite
        # Observability handles are captured at construction; enable a
        # registry before building the trainer to collect its metrics.
        registry = get_registry()
        self._obs = registry
        self._epoch_counter = registry.counter("trainer.epochs")
        self._batch_counter = registry.counter("trainer.batches")
        self._nonfinite_counter = registry.counter("trainer.nonfinite_batches")
        self._estimator_timer = registry.histogram("trainer.estimator_step_seconds")
        self._main_timer = registry.histogram("trainer.main_step_seconds")
        self._batch_timer = registry.histogram("trainer.batch_seconds")
        self._loss_gauges = {
            key: registry.gauge(f"trainer.loss.{key}")
            for key in ("total", "anomaly", "system", "mi", "da")
        }
        rng = np.random.default_rng(self.config.seed + 1)
        self._rng = rng
        self.club = CLUBEstimator(
            self.config.feature_dim, self.config.feature_dim, rng=rng
        )
        self.daan = DAANModule(self.config.feature_dim, num_classes=2, rng=rng)
        self.optimizer = nn.AdamW(
            model.parameters() + self.daan.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.club_optimizer = nn.Adam(self.club.parameters(), lr=1e-3)
        self.history = TrainingHistory()
        # Resume bookkeeping.  `_epoch` counts completed epochs, `_step`
        # counts optimizer steps across the whole run (both survive
        # checkpoint round-trips); `_epoch_state` holds the in-flight
        # epoch's shuffle order, batch position and partial loss sums
        # whenever the trainer is paused mid-epoch.
        self._epoch = 0
        self._step = 0
        self._epoch_state: dict | None = None
        self.run_failed = False

    # ------------------------------------------------------------------
    def _auto_pos_weight(self, labels: np.ndarray) -> float:
        positives = float(labels.sum())
        negatives = float(len(labels) - positives)
        if positives == 0:
            return 1.0
        return float(np.clip(negatives / positives, 1.0, 50.0))

    def _train_estimator(self, batch: TrainingBatch) -> None:
        with nn.no_grad():
            unified, specific = self.model.extract_features(batch.sequences)
        unified = Tensor(unified.data)
        specific = Tensor(specific.data)
        loss = self.club.learning_loss(unified, specific)
        self.club_optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self.club.parameters(), self.config.grad_clip)
        self.club_optimizer.step()

    def _train_main(self, batch: TrainingBatch, alpha: float,
                    pos_weight: float) -> dict[str, float] | None:
        unified, specific = self.model.extract_features(batch.sequences)
        anomaly_logits = self.model.anomaly_logits(unified)
        loss_anomaly = nn.binary_cross_entropy_with_logits(
            anomaly_logits, batch.anomaly_labels.astype(np.float32), pos_weight=pos_weight
        )
        loss = loss_anomaly
        parts = {"anomaly": float(loss_anomaly.data), "system": 0.0, "mi": 0.0, "da": 0.0}

        if self.use_sufe:
            system_logits = self.model.system_logits(specific)
            loss_system = nn.cross_entropy(system_logits, batch.system_labels)
            loss_mi = self.club.mi_upper_bound(unified, specific, rng=self._rng)
            loss = loss + loss_system + loss_mi * self.config.lambda_mi
            parts["system"] = float(loss_system.data)
            parts["mi"] = float(loss_mi.data)

        if self.use_da and len(np.unique(batch.domain_labels)) > 1:
            self.daan.set_alpha(alpha)
            with nn.no_grad():
                probs = anomaly_logits.sigmoid().data
            class_probs = Tensor(np.stack([1.0 - probs, probs], axis=1))
            loss_da = self.daan(unified, batch.domain_labels, class_probs)
            loss = loss + loss_da * self.config.lambda_da
            parts["da"] = float(loss_da.data)

        loss = fault_point("core.trainer.loss", loss)
        if self.skip_nonfinite and not np.isfinite(float(loss.data)):
            # Skip the step entirely: backprop through a non-finite loss
            # would poison every parameter in one update.
            self._nonfinite_counter.inc()
            return None

        self.optimizer.zero_grad()
        self.club_optimizer.zero_grad()  # discard MI gradients into the estimator
        loss.backward()
        nn.clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
        self.optimizer.step()
        self.club_optimizer.zero_grad()
        parts["total"] = float(loss.data)
        return parts

    # ------------------------------------------------------------------
    # Controller dispatch
    # ------------------------------------------------------------------
    @property
    def completed_epochs(self) -> int:
        """Fully completed epochs (a paused mid-epoch does not count)."""
        return self._epoch

    @property
    def global_step(self) -> int:
        """Optimizer steps taken across the whole run, resume included."""
        return self._step

    def set_learning_rate(self, lr: float) -> None:
        """Adjust the main optimizer's learning rate (controller hook
        surface); the value travels in the checkpointed optimizer state."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.optimizer.lr = float(lr)

    def _dispatch(self, controller, hook: str, *args) -> str:
        if controller is None:
            return CONTINUE
        try:
            action = getattr(controller, hook)(*args)
        except ControllerError:
            self.run_failed = True
            raise
        except Exception as error:  # lint: disable=blanket-except
            # A broken callback fails the run.  Training state is left
            # exactly as it was, so the last durable checkpoint stays
            # the restart point.
            self.run_failed = True
            raise ControllerError(
                f"training controller {hook} raised") from error
        return CONTINUE if action is None else action

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------
    def _module_rngs(self) -> list[np.random.Generator]:
        """Distinct RNG generators reachable from the module trees
        (dropout masks draw from these), in deterministic first-seen
        traversal order.  Both trainers in a resume pair build the same
        sharing topology, so positional restore is exact."""
        generators: list[np.random.Generator] = []
        seen: set[int] = set()

        def walk(module) -> None:
            rng = getattr(module, "rng", None)
            if isinstance(rng, np.random.Generator) and id(rng) not in seen:
                seen.add(id(rng))
                generators.append(rng)
            for child in module._modules.values():
                walk(child)

        for root in (self.model, self.daan, self.club):
            walk(root)
        return generators

    def checkpoint_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """Everything needed to resume bit-exactly, as (arrays, meta).

        Arrays: model/DAAN/CLUB parameters, both optimizers' moment
        estimates, and the in-flight epoch's shuffle order (mid-epoch
        only).  Meta (JSON-serializable): epoch/step counters, optimizer
        scalars, the PCG64 bit-generator state, the loss history and the
        mid-epoch batch position and partial loss sums.
        """
        arrays: dict[str, np.ndarray] = {}
        for prefix, module in (("model", self.model), ("daan", self.daan),
                               ("club", self.club)):
            for key, value in module.state_dict().items():
                arrays[f"{prefix}.{key}"] = value
        optimizer_meta = {}
        for prefix, optimizer in (("opt", self.optimizer),
                                  ("clubopt", self.club_optimizer)):
            state = optimizer.state_dict()
            for i, (m, v) in enumerate(zip(state["m"], state["v"])):
                arrays[f"{prefix}.m.{i}"] = m
                arrays[f"{prefix}.v.{i}"] = v
            optimizer_meta[prefix] = {
                "step_count": state["step_count"],
                "lr": state["lr"],
                "size": len(state["m"]),
            }
        meta = {
            "format": 1,
            "epoch": self._epoch,
            "step": self._step,
            "optimizers": optimizer_meta,
            "rng": self._rng.bit_generator.state,
            "module_rngs": [generator.bit_generator.state
                            for generator in self._module_rngs()],
            # DAAN's dynamic global/local balance is an EMA updated every
            # forward — rolling state the parameter arrays don't carry.
            "daan_omega": float(self.daan.omega),
            "history": {
                "total": list(self.history.total),
                "anomaly": list(self.history.anomaly),
                "system": list(self.history.system),
                "mutual_information": list(self.history.mutual_information),
                "domain_adaptation": list(self.history.domain_adaptation),
            },
            "epoch_state": None,
        }
        if self._epoch_state is not None:
            arrays["order"] = np.asarray(self._epoch_state["order"],
                                         dtype=np.int64)
            meta["epoch_state"] = {
                "position": int(self._epoch_state["position"]),
                "count": int(self._epoch_state["count"]),
                "sums": dict(self._epoch_state["sums"]),
            }
        return arrays, meta

    def restore_checkpoint(self, arrays: dict[str, np.ndarray],
                           meta: dict) -> None:
        """Load state captured by :meth:`checkpoint_state`."""
        grouped: dict[str, dict[str, np.ndarray]] = {
            "model": {}, "daan": {}, "club": {}}
        for key, value in arrays.items():
            prefix, _, rest = key.partition(".")
            if prefix in grouped:
                grouped[prefix][rest] = value
        self.model.load_state_dict(grouped["model"])
        self.daan.load_state_dict(grouped["daan"])
        self.club.load_state_dict(grouped["club"])
        for prefix, optimizer in (("opt", self.optimizer),
                                  ("clubopt", self.club_optimizer)):
            scalars = meta["optimizers"][prefix]
            size = int(scalars["size"])
            optimizer.load_state_dict({
                "step_count": scalars["step_count"],
                "lr": scalars["lr"],
                "m": [arrays[f"{prefix}.m.{i}"] for i in range(size)],
                "v": [arrays[f"{prefix}.v.{i}"] for i in range(size)],
            })
        self._rng.bit_generator.state = meta["rng"]
        generators = self._module_rngs()
        states = meta["module_rngs"]
        if len(generators) != len(states):
            raise ValueError(
                f"checkpoint carries {len(states)} module RNG states for "
                f"{len(generators)} generators — model topology mismatch")
        for generator, state in zip(generators, states):
            generator.bit_generator.state = state
        self.daan.omega = float(meta["daan_omega"])
        history = meta["history"]
        self.history.total[:] = history["total"]
        self.history.anomaly[:] = history["anomaly"]
        self.history.system[:] = history["system"]
        self.history.mutual_information[:] = history["mutual_information"]
        self.history.domain_adaptation[:] = history["domain_adaptation"]
        self._epoch = int(meta["epoch"])
        self._step = int(meta["step"])
        epoch_state = meta.get("epoch_state")
        if epoch_state is None:
            self._epoch_state = None
        else:
            self._epoch_state = {
                "order": np.asarray(arrays["order"], dtype=np.int64),
                "position": int(epoch_state["position"]),
                "count": int(epoch_state["count"]),
                "sums": {key: float(value)
                         for key, value in epoch_state["sums"].items()},
            }

    def resume_from(self, store) -> bool:
        """Restore the newest verifiable checkpoint from a
        :class:`~repro.core.checkpoint.CheckpointStore`; ``False`` when
        the store holds none."""
        loaded = store.load_latest()
        if loaded is None:
            return False
        arrays, meta, _entry = loaded
        self.restore_checkpoint(arrays, meta)
        return True

    # ------------------------------------------------------------------
    def fit(self, data: TrainingBatch, epochs: int | None = None,
            verbose: bool = False, profiler=None,
            controller=None) -> TrainingHistory:
        """Train on the full (source + target) training set.

        ``epochs`` counts epochs *beyond those already completed*: a
        fresh trainer runs the usual ``config.epochs``, while a trainer
        restored mid-run via :meth:`restore_checkpoint` continues toward
        the original total — the GRL alpha schedule spans the combined
        run, so ``fit(k) → resume → fit(N−k)`` is bit-identical to
        ``fit(N)``.

        ``profiler`` optionally takes an :class:`repro.nn.OpProfiler`; it is
        entered around the whole training loop so every autograd op in the
        fit lands in its ranked hot-op table (the ``repro profile`` path).

        ``controller`` optionally takes a
        :class:`~repro.core.controller.TrainingController` whose hooks
        can pause, stop, checkpoint, or adjust the learning rate.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        pos_weight = (
            self.pos_weight if self.pos_weight is not None
            else self._auto_pos_weight(data.anomaly_labels)
        )
        target_epoch = self._epoch + epochs
        total_steps = max(1, target_epoch * max(1, len(data.anomaly_labels) // self.config.batch_size))
        self.model.train()
        profile_scope = profiler if profiler is not None else contextlib.nullcontext()
        self._dispatch(controller, "on_fit_start", self)
        with profile_scope:
            self._fit_epochs(data, target_epoch, pos_weight, total_steps,
                             verbose, controller)
        self.model.eval()
        self._dispatch(controller, "on_fit_end", self, self.history)
        return self.history

    def _fit_epochs(self, data: TrainingBatch, target_epoch: int,
                    pos_weight: float, total_steps: int, verbose: bool,
                    controller) -> None:
        batch_size = self.config.batch_size
        while self._epoch < target_epoch:
            epoch = self._epoch
            if self._epoch_state is None:
                self._epoch_state = {
                    "order": self._rng.permutation(len(data.anomaly_labels)),
                    "position": 0,
                    "sums": {"total": 0.0, "anomaly": 0.0, "system": 0.0,
                             "mi": 0.0, "da": 0.0},
                    "count": 0,
                }
            if self._dispatch(controller, "on_epoch_start", self, epoch) == STOP:
                self._epoch_state = None
                return
            state = self._epoch_state
            order = state["order"]
            with self._obs.tracer.span("trainer.epoch", index=epoch) as span:
                while state["position"] < len(order):
                    index = order[state["position"]:state["position"] + batch_size]
                    state["position"] += batch_size
                    if len(index) < 2:
                        continue  # CLUB/DAAN need at least two samples
                    batch = TrainingBatch(
                        sequences=data.sequences[index],
                        anomaly_labels=data.anomaly_labels[index],
                        system_labels=data.system_labels[index],
                        domain_labels=data.domain_labels[index],
                    )
                    with self._batch_timer.time():
                        if self.use_sufe:
                            with self._estimator_timer.time():
                                self._train_estimator(batch)
                        alpha = DAANModule.schedule_alpha(self._step / total_steps)
                        with self._main_timer.time():
                            parts = self._train_main(batch, alpha, pos_weight)
                    if parts is None:
                        # Non-finite loss skipped its step; keep the alpha
                        # schedule moving and leave the epoch averages clean.
                        self._step += 1
                        self._batch_counter.inc()
                    else:
                        for key in state["sums"]:
                            state["sums"][key] += parts[key]
                        state["count"] += 1
                        self._step += 1
                        self._batch_counter.inc()
                    action = self._dispatch(controller, "on_step", self,
                                            self._step)
                    if action == PAUSE:
                        # Mid-epoch state stays in place: a checkpoint
                        # written by the hook (or a later fit) resumes
                        # from exactly the next batch.
                        return
                    if action == STOP:
                        self._epoch_state = None
                        return
                if state["count"] == 0:
                    raise ValueError("training data produced no usable batches")
                metrics = {key: state["sums"][key] / state["count"]
                           for key in state["sums"]}
                self.history.total.append(metrics["total"])
                self.history.anomaly.append(metrics["anomaly"])
                self.history.system.append(metrics["system"])
                self.history.mutual_information.append(metrics["mi"])
                self.history.domain_adaptation.append(metrics["da"])
                self._epoch_counter.inc()
                for key, gauge in self._loss_gauges.items():
                    gauge.set(metrics[key])
                    span.set(f"loss_{key}", round(metrics[key], 6))
                span.set("batches", state["count"])
            self._epoch_state = None
            self._epoch += 1
            if verbose:
                print(f"epoch {epoch + 1}/{target_epoch}: " + ", ".join(
                    f"{k}={v:.4f}" for k, v in self.history.last().items()
                ))
            if self._dispatch(controller, "on_epoch_end", self, epoch,
                              metrics) in (PAUSE, STOP):
                return
