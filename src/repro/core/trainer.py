"""Offline training loop implementing Eq. 5 (§III-D4).

Per batch the trainer alternates two phases:

1. *Estimator phase* — the CLUB network maximizes the likelihood of the
   current (F_u, F_s) pairs (features detached).
2. *Main phase* — the model minimizes
   ``L = L_anomaly + L_system + λ_MI · L_MI + λ_DA · L_DA``
   where ``L_MI`` is CLUB's upper bound and ``L_DA`` is the DAAN loss
   with GRL alpha scheduled over training progress.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..config import LogSynergyConfig
from ..nn.tensor import Tensor
from ..obs import get_registry
from ..testing.faultpoints import fault_point
from .club import CLUBEstimator
from .daan import DAANModule
from .model import LogSynergyModel

__all__ = ["TrainingBatch", "TrainingHistory", "LogSynergyTrainer"]


@dataclass(frozen=True)
class TrainingBatch:
    """One mini-batch of training data.

    ``sequences``: (batch, window, embedding_dim) float32,
    ``anomaly_labels``: (batch,) in {0, 1},
    ``system_labels``: (batch,) in [0, num_systems),
    ``domain_labels``: (batch,) in {0 source, 1 target}.
    """

    sequences: np.ndarray
    anomaly_labels: np.ndarray
    system_labels: np.ndarray
    domain_labels: np.ndarray


@dataclass
class TrainingHistory:
    """Per-epoch loss traces for inspection and tests."""

    total: list[float] = field(default_factory=list)
    anomaly: list[float] = field(default_factory=list)
    system: list[float] = field(default_factory=list)
    mutual_information: list[float] = field(default_factory=list)
    domain_adaptation: list[float] = field(default_factory=list)

    def last(self) -> dict[str, float]:
        return {
            "total": self.total[-1],
            "anomaly": self.anomaly[-1],
            "system": self.system[-1],
            "mi": self.mutual_information[-1],
            "da": self.domain_adaptation[-1],
        }


class LogSynergyTrainer:
    """Trains a :class:`LogSynergyModel` with SUFE + DAAN objectives.

    Setting ``use_sufe=False`` reproduces the "LogSynergy w/o SUFE"
    ablation (no system classifier, no MI minimization); domain adaptation
    can likewise be disabled for ablations via ``use_da=False``.
    """

    def __init__(self, model: LogSynergyModel, config: LogSynergyConfig | None = None,
                 use_sufe: bool | None = None, use_da: bool | None = None,
                 pos_weight: float | None = None, skip_nonfinite: bool = True):
        self.model = model
        self.config = config or model.config
        self.use_sufe = self.config.use_sufe if use_sufe is None else use_sufe
        self.use_da = self.config.use_da if use_da is None else use_da
        self.pos_weight = pos_weight
        # Guard against NaN/Inf batch losses (bad batch, numeric blow-up):
        # skip the optimizer step instead of poisoning every parameter.
        self.skip_nonfinite = skip_nonfinite
        # Observability handles are captured at construction; enable a
        # registry before building the trainer to collect its metrics.
        registry = get_registry()
        self._obs = registry
        self._epoch_counter = registry.counter("trainer.epochs")
        self._batch_counter = registry.counter("trainer.batches")
        self._nonfinite_counter = registry.counter("trainer.nonfinite_batches")
        self._estimator_timer = registry.histogram("trainer.estimator_step_seconds")
        self._main_timer = registry.histogram("trainer.main_step_seconds")
        self._batch_timer = registry.histogram("trainer.batch_seconds")
        self._loss_gauges = {
            key: registry.gauge(f"trainer.loss.{key}")
            for key in ("total", "anomaly", "system", "mi", "da")
        }
        rng = np.random.default_rng(self.config.seed + 1)
        self._rng = rng
        self.club = CLUBEstimator(
            self.config.feature_dim, self.config.feature_dim, rng=rng
        )
        self.daan = DAANModule(self.config.feature_dim, num_classes=2, rng=rng)
        self.optimizer = nn.AdamW(
            model.parameters() + self.daan.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.club_optimizer = nn.Adam(self.club.parameters(), lr=1e-3)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def _auto_pos_weight(self, labels: np.ndarray) -> float:
        positives = float(labels.sum())
        negatives = float(len(labels) - positives)
        if positives == 0:
            return 1.0
        return float(np.clip(negatives / positives, 1.0, 50.0))

    def _iterate_batches(self, data: TrainingBatch, batch_size: int):
        order = self._rng.permutation(len(data.anomaly_labels))
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            if len(index) < 2:
                continue  # CLUB/DAAN need at least two samples
            yield TrainingBatch(
                sequences=data.sequences[index],
                anomaly_labels=data.anomaly_labels[index],
                system_labels=data.system_labels[index],
                domain_labels=data.domain_labels[index],
            )

    def _train_estimator(self, batch: TrainingBatch) -> None:
        with nn.no_grad():
            unified, specific = self.model.extract_features(batch.sequences)
        unified = Tensor(unified.data)
        specific = Tensor(specific.data)
        loss = self.club.learning_loss(unified, specific)
        self.club_optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self.club.parameters(), self.config.grad_clip)
        self.club_optimizer.step()

    def _train_main(self, batch: TrainingBatch, alpha: float,
                    pos_weight: float) -> dict[str, float] | None:
        unified, specific = self.model.extract_features(batch.sequences)
        anomaly_logits = self.model.anomaly_logits(unified)
        loss_anomaly = nn.binary_cross_entropy_with_logits(
            anomaly_logits, batch.anomaly_labels.astype(np.float32), pos_weight=pos_weight
        )
        loss = loss_anomaly
        parts = {"anomaly": float(loss_anomaly.data), "system": 0.0, "mi": 0.0, "da": 0.0}

        if self.use_sufe:
            system_logits = self.model.system_logits(specific)
            loss_system = nn.cross_entropy(system_logits, batch.system_labels)
            loss_mi = self.club.mi_upper_bound(unified, specific, rng=self._rng)
            loss = loss + loss_system + loss_mi * self.config.lambda_mi
            parts["system"] = float(loss_system.data)
            parts["mi"] = float(loss_mi.data)

        if self.use_da and len(np.unique(batch.domain_labels)) > 1:
            self.daan.set_alpha(alpha)
            with nn.no_grad():
                probs = anomaly_logits.sigmoid().data
            class_probs = Tensor(np.stack([1.0 - probs, probs], axis=1))
            loss_da = self.daan(unified, batch.domain_labels, class_probs)
            loss = loss + loss_da * self.config.lambda_da
            parts["da"] = float(loss_da.data)

        loss = fault_point("core.trainer.loss", loss)
        if self.skip_nonfinite and not np.isfinite(float(loss.data)):
            # Skip the step entirely: backprop through a non-finite loss
            # would poison every parameter in one update.
            self._nonfinite_counter.inc()
            return None

        self.optimizer.zero_grad()
        self.club_optimizer.zero_grad()  # discard MI gradients into the estimator
        loss.backward()
        nn.clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
        self.optimizer.step()
        self.club_optimizer.zero_grad()
        parts["total"] = float(loss.data)
        return parts

    # ------------------------------------------------------------------
    def fit(self, data: TrainingBatch, epochs: int | None = None,
            verbose: bool = False, profiler=None) -> TrainingHistory:
        """Train on the full (source + target) training set.

        ``profiler`` optionally takes an :class:`repro.nn.OpProfiler`; it is
        entered around the whole training loop so every autograd op in the
        fit lands in its ranked hot-op table (the ``repro profile`` path).
        """
        epochs = epochs if epochs is not None else self.config.epochs
        pos_weight = (
            self.pos_weight if self.pos_weight is not None
            else self._auto_pos_weight(data.anomaly_labels)
        )
        total_steps = max(1, epochs * max(1, len(data.anomaly_labels) // self.config.batch_size))
        step = 0
        self.model.train()
        profile_scope = profiler if profiler is not None else contextlib.nullcontext()
        with profile_scope:
            self._fit_epochs(data, epochs, pos_weight, total_steps, step, verbose)
        self.model.eval()
        return self.history

    def _fit_epochs(self, data: TrainingBatch, epochs: int, pos_weight: float,
                    total_steps: int, step: int, verbose: bool) -> None:
        for epoch in range(epochs):
            sums = {"total": 0.0, "anomaly": 0.0, "system": 0.0, "mi": 0.0, "da": 0.0}
            count = 0
            with self._obs.tracer.span("trainer.epoch", index=epoch) as span:
                for batch in self._iterate_batches(data, self.config.batch_size):
                    with self._batch_timer.time():
                        if self.use_sufe:
                            with self._estimator_timer.time():
                                self._train_estimator(batch)
                        alpha = DAANModule.schedule_alpha(step / total_steps)
                        with self._main_timer.time():
                            parts = self._train_main(batch, alpha, pos_weight)
                    if parts is None:
                        # Non-finite loss skipped its step; keep the alpha
                        # schedule moving and leave the epoch averages clean.
                        step += 1
                        self._batch_counter.inc()
                        continue
                    for key in sums:
                        sums[key] += parts[key]
                    count += 1
                    step += 1
                    self._batch_counter.inc()
                if count == 0:
                    raise ValueError("training data produced no usable batches")
                self.history.total.append(sums["total"] / count)
                self.history.anomaly.append(sums["anomaly"] / count)
                self.history.system.append(sums["system"] / count)
                self.history.mutual_information.append(sums["mi"] / count)
                self.history.domain_adaptation.append(sums["da"] / count)
                self._epoch_counter.inc()
                for key, gauge in self._loss_gauges.items():
                    value = sums[key] / count
                    gauge.set(value)
                    span.set(f"loss_{key}", round(value, 6))
                span.set("batches", count)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: " + ", ".join(
                    f"{k}={v:.4f}" for k, v in self.history.last().items()
                ))
