"""Explanation of anomaly decisions (the §VI-D case-study workflow).

The paper's case study traces a LogTransfer false positive to misleading
word-level similarity between a normal System A window and an anomalous
System C training sample, and shows LogSynergy's interpretations keep the
two apart.  This module provides the tooling for that analysis:

* :func:`occlusion_attribution` — per-event contribution to a window's
  anomaly score, measured by replacing each event embedding with the
  window mean and recording the score drop;
* :func:`nearest_training_sequences` — retrieve the training windows whose
  pooled features are closest to a query window (the "closest match in
  System C" step of the case study);
* :class:`WindowExplanation` — the assembled operator-facing artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from .model import LogSynergyModel

__all__ = ["EventAttribution", "WindowExplanation", "occlusion_attribution",
           "nearest_training_sequences", "explain_window"]


@dataclass(frozen=True)
class EventAttribution:
    """One event's contribution to the window's anomaly score."""

    position: int
    message: str
    interpretation: str
    score_drop: float  # base score minus score with this event occluded


@dataclass(frozen=True)
class WindowExplanation:
    """Full explanation for one scored window."""

    score: float
    attributions: tuple[EventAttribution, ...]
    neighbours: tuple[tuple[int, float], ...] = ()  # (train index, cosine sim)

    def top_events(self, k: int = 3) -> list[EventAttribution]:
        """The k events that pushed the score up the most."""
        ranked = sorted(self.attributions, key=lambda a: a.score_drop, reverse=True)
        return ranked[:k]

    def render(self) -> str:
        """Render the payload as human-readable text."""
        lines = [f"anomaly score: {self.score:.3f}", "top contributing events:"]
        for attribution in self.top_events():
            lines.append(
                f"  [{attribution.position}] drop={attribution.score_drop:+.3f}  "
                f"{attribution.interpretation}"
            )
        if self.neighbours:
            lines.append("nearest training windows (index, cosine):")
            for index, similarity in self.neighbours:
                lines.append(f"  #{index}  {similarity:.3f}")
        return "\n".join(lines)


def occlusion_attribution(model: LogSynergyModel, window: np.ndarray) -> np.ndarray:
    """Score drop when each event embedding is replaced by the window mean.

    ``window`` has shape ``(length, embedding_dim)``; returns ``(length,)``
    of base_score - occluded_score (positive = the event raised the score).
    """
    if window.ndim != 2:
        raise ValueError(f"window must be 2-D (length, dim), got shape {window.shape}")
    length = len(window)
    base = float(model.predict_proba(window[None])[0])
    mean_embedding = window.mean(axis=0)
    occluded = np.repeat(window[None], length, axis=0)
    for position in range(length):
        occluded[position, position] = mean_embedding
    scores = model.predict_proba(occluded)
    return base - scores


def nearest_training_sequences(model: LogSynergyModel, window: np.ndarray,
                               training_windows: np.ndarray, k: int = 3
                               ) -> list[tuple[int, float]]:
    """Indices of the k training windows closest in unified-feature space."""
    if k <= 0:
        raise ValueError("k must be positive")
    with nn.no_grad():
        query, _ = model.extract_features(window[None])
        bank, _ = model.extract_features(training_windows)
    query_vec = query.data[0]
    bank_mat = bank.data
    norms = np.linalg.norm(bank_mat, axis=1) * (np.linalg.norm(query_vec) + 1e-12)
    similarities = bank_mat @ query_vec / np.maximum(norms, 1e-12)
    order = np.argsort(-similarities)[:k]
    return [(int(i), float(similarities[i])) for i in order]


def explain_window(model: LogSynergyModel, window: np.ndarray,
                   messages: list[str], interpretations: list[str],
                   training_windows: np.ndarray | None = None,
                   k_neighbours: int = 3) -> WindowExplanation:
    """Assemble a :class:`WindowExplanation` for one embedded window."""
    if not (len(messages) == len(interpretations) == len(window)):
        raise ValueError("messages, interpretations and window must align")
    drops = occlusion_attribution(model, window)
    attributions = tuple(
        EventAttribution(position=i, message=messages[i],
                         interpretation=interpretations[i], score_drop=float(drops[i]))
        for i in range(len(window))
    )
    neighbours: tuple[tuple[int, float], ...] = ()
    if training_windows is not None and len(training_windows):
        neighbours = tuple(
            nearest_training_sequences(model, window, training_windows, k=k_neighbours)
        )
    score = float(model.predict_proba(window[None])[0])
    return WindowExplanation(score=score, attributions=attributions, neighbours=neighbours)
