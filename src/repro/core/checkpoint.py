"""Durable trainer checkpoints: atomic npz writes behind a manifest.

A checkpoint is one ``.npz`` archive holding every array the trainer
needs to resume bit-exactly (parameters, optimizer moments, the current
epoch's shuffle order) plus a JSON metadata record (RNG bit-generator
state, epoch/step counters, loss history, mid-epoch offsets) embedded as
a ``uint8`` member so the whole checkpoint travels in the repo's
existing npz format.

Durability follows the write-then-rename discipline: the payload is
assembled in memory, its SHA-256 recorded, the bytes written to a
temporary file and ``os.replace``d into place, and only then is the
manifest (itself replaced atomically) extended.  A crash at any point
leaves either the previous manifest or the new one — never a manifest
pointing at a torn file.  On load the digest is re-verified; a mismatch
quarantines the file with a ``.corrupt-<ts>`` suffix (the CachedLLM
pattern) and falls back to the previous manifest entry.

The ``trainer.checkpoint.write`` fault point sits between digest and
write: a ``raise`` fault models a crash mid-write (nothing durable), a
``corrupt`` fault models a torn write that lands on disk and must be
caught by the digest check.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..obs import get_registry
from ..testing.faultpoints import fault_point

__all__ = ["CheckpointEntry", "CheckpointStore"]

_MANIFEST = "MANIFEST.json"
# Reserved npz member carrying the JSON metadata record.
_META_KEY = "__checkpoint_meta__"


@dataclass(frozen=True)
class CheckpointEntry:
    """One manifest line: which file, where in training, and its digest."""

    file: str
    epoch: int
    step: int
    sha256: str
    written_at: int


def _pack(arrays: dict[str, np.ndarray], meta: dict) -> bytes:
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    buffer = io.BytesIO()
    np.savez(buffer, **{_META_KEY: np.frombuffer(blob, dtype=np.uint8)},
             **arrays)
    return buffer.getvalue()


def _unpack(payload: bytes) -> tuple[dict[str, np.ndarray], dict]:
    with np.load(io.BytesIO(payload)) as archive:
        if _META_KEY not in archive.files:
            raise ValueError("checkpoint archive has no metadata record")
        meta = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
        arrays = {key: archive[key]
                  for key in archive.files if key != _META_KEY}
    return arrays, meta


class CheckpointStore:
    """Manifest-aware checkpoint directory with atomic writes.

    ``keep`` bounds retention: older checkpoint files beyond the newest
    ``keep`` manifest entries are deleted on save (quarantined files are
    never touched — they are evidence).  ``clock`` is injectable so
    quarantine names and ``written_at`` stamps are deterministic under
    test.
    """

    def __init__(self, directory: str | os.PathLike, *, keep: int = 3,
                 clock: Callable[[], float] = time.time):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self._clock = clock
        registry = get_registry()
        self._saved = registry.counter("trainer.checkpoint.saved")
        self._restored = registry.counter("trainer.checkpoint.restored")
        self._quarantined = registry.counter("trainer.checkpoint.quarantined")
        self._fallbacks = registry.counter("trainer.checkpoint.fallbacks")
        self._bytes = registry.gauge("trainer.checkpoint.bytes")

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _read_manifest(self) -> dict:
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return {"next_serial": 0, "entries": []}
        except (OSError, json.JSONDecodeError):
            # A torn manifest carries no trustworthy history.  Starting
            # fresh is safe: files are only ever loaded through a
            # digest-bearing entry, so orphans can never load silently.
            return {"next_serial": 0, "entries": []}
        if not isinstance(data, dict) or "entries" not in data:
            return {"next_serial": 0, "entries": []}
        data.setdefault("next_serial", len(data["entries"]))
        return data

    def _write_manifest(self, manifest: dict) -> None:
        payload = json.dumps(manifest, sort_keys=True).encode("utf-8")
        temp = self.directory / f".{_MANIFEST}.tmp"
        temp.write_bytes(payload)
        os.replace(temp, self.manifest_path)

    def entries(self) -> list[CheckpointEntry]:
        """Manifest entries, oldest first."""
        return [CheckpointEntry(**raw)
                for raw in self._read_manifest()["entries"]]

    # -- save ----------------------------------------------------------
    def save(self, arrays: dict[str, np.ndarray], meta: dict) -> Path:
        """Write one checkpoint durably; returns the final path.

        ``meta`` must be JSON-serializable; its ``epoch``/``step`` keys
        (when present) are copied into the manifest entry.
        """
        manifest = self._read_manifest()
        serial = int(manifest["next_serial"])
        name = f"checkpoint-{serial:06d}.npz"
        payload = _pack(arrays, meta)
        digest = hashlib.sha256(payload).hexdigest()
        # Crash/tear injection point: `raise` dies before anything is
        # durable, `corrupt` lets damaged bytes land for load to catch.
        payload = fault_point("trainer.checkpoint.write", payload)
        final = self.directory / name
        temp = self.directory / f".{name}.tmp"
        try:
            temp.write_bytes(payload)
            os.replace(temp, final)
        finally:
            with contextlib.suppress(FileNotFoundError):
                temp.unlink()
        manifest["entries"].append({
            "file": name,
            "epoch": int(meta.get("epoch", 0)),
            "step": int(meta.get("step", 0)),
            "sha256": digest,
            "written_at": int(self._clock()),
        })
        manifest["next_serial"] = serial + 1
        # Trim the manifest before deleting anything: a crash in between
        # leaves orphan files (harmless), never dangling entries.
        excess = manifest["entries"][:-self.keep]
        manifest["entries"] = manifest["entries"][-self.keep:]
        self._write_manifest(manifest)
        for raw in excess:
            with contextlib.suppress(FileNotFoundError):
                (self.directory / raw["file"]).unlink()
        self._saved.inc()
        self._bytes.set(float(len(payload)))
        return final

    # -- load ----------------------------------------------------------
    def load_latest(self):
        """Newest verifiable checkpoint as ``(arrays, meta, entry)``.

        Walks the manifest newest-first: a missing file is skipped, a
        digest mismatch or unreadable archive is quarantined, and in
        either case the previous entry is tried.  Returns ``None`` when
        no entry survives.
        """
        entries = list(self._read_manifest()["entries"])
        first = True
        while entries:
            raw = entries.pop()
            if not first:
                self._fallbacks.inc()
            first = False
            path = self.directory / raw["file"]
            try:
                payload = path.read_bytes()
            except FileNotFoundError:
                continue
            if hashlib.sha256(payload).hexdigest() != raw["sha256"]:
                self._quarantine(path)
                continue
            try:
                arrays, meta = _unpack(payload)
            except (ValueError, KeyError, OSError):
                self._quarantine(path)
                continue
            self._restored.inc()
            return arrays, meta, CheckpointEntry(**raw)
        return None

    def _quarantine(self, path: Path) -> None:
        """Move a damaged checkpoint aside so it is preserved as
        evidence but can never be picked up again."""
        stamp = int(self._clock())
        target = path.with_name(f"{path.name}.corrupt-{stamp}")
        serial = 0
        while target.exists():
            serial += 1
            target = path.with_name(f"{path.name}.corrupt-{stamp}-{serial}")
        path.rename(target)
        self._quarantined.inc()
