"""DAAN: Dynamic Adversarial Adaptation Network (Yu et al., ICDM 2019).

Aligns the distribution of system-unified features between source and
target domains (§III-D3).  A global domain discriminator handles the
marginal distribution; per-class discriminators (normal / anomalous,
weighted by the anomaly classifier's soft predictions) handle conditional
distributions.  A dynamic factor ``omega`` balances the two using the
discriminators' own errors, and a gradient reversal layer turns the
discriminator losses into an adversarial signal for the feature extractor.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor

__all__ = ["DAANModule"]


def _domain_bce(logits: Tensor, domain_labels: np.ndarray) -> Tensor:
    return nn.binary_cross_entropy_with_logits(
        logits.reshape(-1), Tensor(domain_labels.astype(np.float32))
    )


class DAANModule(nn.Module):
    """Adversarial domain-adaptation head over system-unified features.

    Parameters
    ----------
    feature_dim:
        Dimension of ``F_u(x)``.
    num_classes:
        Task classes for the conditional discriminators (2 for anomaly
        detection: normal, anomalous).
    """

    def __init__(self, feature_dim: int, hidden_dim: int = 64, num_classes: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.grl = nn.GradientReversal(alpha=1.0)
        self.global_discriminator = nn.Sequential(
            nn.Linear(feature_dim, hidden_dim, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden_dim, 1, rng=rng),
        )
        self.class_discriminators = nn.ModuleList(
            nn.Sequential(
                nn.Linear(feature_dim, hidden_dim, rng=rng),
                nn.ReLU(),
                nn.Linear(hidden_dim, 1, rng=rng),
            )
            for _ in range(num_classes)
        )
        self.num_classes = num_classes
        # Dynamic factor: EMA of marginal-vs-conditional balance.
        self.omega = 0.5
        self._omega_momentum = 0.9

    def set_alpha(self, alpha: float) -> None:
        """Update the GRL strength (scheduled 0 -> 1 over training)."""
        self.grl.alpha = alpha

    @staticmethod
    def schedule_alpha(progress: float, gamma: float = 10.0) -> float:
        """The DANN/DAAN schedule: ``2 / (1 + exp(-gamma p)) - 1``."""
        progress = min(max(progress, 0.0), 1.0)
        return 2.0 / (1.0 + np.exp(-gamma * progress)) - 1.0

    def _update_omega(self, marginal_loss: float, conditional_loss: float) -> None:
        # Proxy A-distances: d = 2 (1 - 2 L).  omega weights the marginal
        # term; it grows when the global discriminator is *more* confused.
        d_marginal = abs(2.0 * (1.0 - 2.0 * marginal_loss))
        d_conditional = abs(2.0 * (1.0 - 2.0 * conditional_loss))
        denom = d_marginal + d_conditional
        target = 0.5 if denom == 0 else d_marginal / denom
        self.omega = self._omega_momentum * self.omega + (1 - self._omega_momentum) * target

    def forward(self, features: Tensor, domain_labels: np.ndarray,
                class_probabilities: Tensor) -> Tensor:
        """Compute the DAAN loss ``L_DA`` (Eq. 4 with dynamic weighting).

        Parameters
        ----------
        features:
            ``F_u(x)`` for the combined source+target batch.
        domain_labels:
            0 for source samples, 1 for target samples.
        class_probabilities:
            ``(batch, num_classes)`` soft task predictions used to weight
            the conditional discriminators (detached by the caller).
        """
        reversed_features = self.grl(features)
        marginal_loss = _domain_bce(self.global_discriminator(reversed_features), domain_labels)

        probs = class_probabilities.data  # soft weights; no grad through weighting
        conditional_terms = []
        for class_index, discriminator in enumerate(self.class_discriminators):
            weights = probs[:, class_index][:, None].astype(np.float32)
            weighted = reversed_features * Tensor(weights)
            conditional_terms.append(_domain_bce(discriminator(weighted), domain_labels))
        conditional_loss = conditional_terms[0]
        for term in conditional_terms[1:]:
            conditional_loss = conditional_loss + term
        conditional_loss = conditional_loss * (1.0 / self.num_classes)

        self._update_omega(float(marginal_loss.data), float(conditional_loss.data))
        return marginal_loss * self.omega + conditional_loss * (1.0 - self.omega)
