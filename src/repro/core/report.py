"""Anomaly report generation (§III-E, §VI-A "Report" stage).

When online detection flags a sequence, LogSynergy assembles a report from
the original messages, their LEI interpretations, the anomaly score and
metadata, which production deployments route to operators via SMS/email.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

__all__ = ["AnomalyReport", "build_report"]


@dataclass(frozen=True)
class AnomalyReport:
    """A structured anomaly alert for operators."""

    system: str
    score: float
    threshold: float
    messages: tuple[str, ...]
    interpretations: tuple[str, ...]
    first_timestamp: datetime | None
    last_timestamp: datetime | None
    metadata: dict = field(default_factory=dict)

    @property
    def is_anomalous(self) -> bool:
        return self.score > self.threshold

    def summary(self) -> str:
        """One-line alert body (what the SMS channel carries)."""
        top = self.interpretations[0] if self.interpretations else "unknown event"
        return (
            f"[{self.system}] anomaly score {self.score:.3f} "
            f"(threshold {self.threshold:.2f}): {top}"
        )

    def render(self) -> str:
        """Full report body (email channel)."""
        lines = [self.summary(), ""]
        lines.append("Log sequence with interpretations:")
        for message, interpretation in zip(self.messages, self.interpretations):
            lines.append(f"  raw : {message}")
            lines.append(f"  LEI : {interpretation}")
        if self.first_timestamp is not None:
            lines.append("")
            lines.append(f"window: {self.first_timestamp} .. {self.last_timestamp}")
        for key, value in self.metadata.items():
            lines.append(f"{key}: {value}")
        return "\n".join(lines)


def build_report(system: str, score: float, threshold: float, messages: list[str],
                 interpretations: list[str], timestamps: list[datetime] | None = None,
                 **metadata) -> AnomalyReport:
    """Assemble an :class:`AnomalyReport` from detection outputs."""
    timestamps = timestamps or []
    return AnomalyReport(
        system=system,
        score=float(score),
        threshold=float(threshold),
        messages=tuple(messages),
        interpretations=tuple(interpretations),
        first_timestamp=min(timestamps) if timestamps else None,
        last_timestamp=max(timestamps) if timestamps else None,
        metadata=dict(metadata),
    )
