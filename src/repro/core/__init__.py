"""LogSynergy core: the paper's primary contribution.

SUFE feature disentanglement (CLUB mutual-information minimization +
anomaly/system classifier pair), DAAN domain adaptation, the Transformer
feature extractor, the offline trainer (Eq. 5) and the online detector.
"""

from .club import CLUBEstimator
from .daan import DAANModule
from .model import LogSynergyModel
from .features import SystemFeaturizer
from .trainer import LogSynergyTrainer, TrainingBatch, TrainingHistory
from .checkpoint import CheckpointEntry, CheckpointStore
from .controller import (
    CONTINUE,
    PAUSE,
    STOP,
    CheckpointEvery,
    ComposedController,
    ControllerError,
    LearningRateController,
    StopAfter,
    TrainingController,
    compose,
)
from .onboard import OnboardingResult, OnboardingSession
from .report import AnomalyReport, build_report
from .explain import (
    EventAttribution,
    WindowExplanation,
    explain_window,
    nearest_training_sequences,
    occlusion_attribution,
)
from .pipeline import LogSynergy

__all__ = [
    "CLUBEstimator", "DAANModule", "LogSynergyModel", "SystemFeaturizer",
    "LogSynergyTrainer", "TrainingBatch", "TrainingHistory",
    "CheckpointEntry", "CheckpointStore",
    "CONTINUE", "PAUSE", "STOP", "TrainingController", "ComposedController",
    "ControllerError", "CheckpointEvery", "StopAfter",
    "LearningRateController", "compose",
    "OnboardingResult", "OnboardingSession",
    "AnomalyReport", "build_report",
    "EventAttribution", "WindowExplanation", "explain_window",
    "occlusion_attribution", "nearest_training_sequences",
    "LogSynergy",
]
