"""Drain: online log parsing with a fixed-depth prefix tree (He et al., ICWS 2017).

Drain routes each masked log message through a tree keyed first by token
count, then by the first ``depth`` tokens (wildcarding tokens that contain
digits), and finally matches against the leaf's template groups by token
similarity.  Messages joining a group generalize the group's template:
positions that disagree become ``<*>``.

This is the parser LogSynergy's pre-processing stage uses (§III-B) to turn
raw messages into (event template, parameters) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import get_registry
from .masking import WILDCARD, mask_message

__all__ = ["LogTemplate", "DrainParser", "ParseResult"]


@dataclass
class LogTemplate:
    """One mined template (log event) with its token form and match count."""

    template_id: int
    tokens: list[str]
    count: int = 0

    @property
    def text(self) -> str:
        return " ".join(self.tokens)

    def parameters_of(self, tokens: list[str]) -> list[str]:
        """Extract the concrete values at this template's wildcard positions."""
        return [tok for tmpl, tok in zip(self.tokens, tokens) if tmpl == WILDCARD]


@dataclass(frozen=True)
class ParseResult:
    """Outcome of parsing one message."""

    template: LogTemplate
    parameters: tuple[str, ...]


class _Node:
    __slots__ = ("children", "groups")

    def __init__(self):
        self.children: dict[str, _Node] = {}
        self.groups: list[LogTemplate] = []


def _has_digit(token: str) -> bool:
    return any(ch.isdigit() for ch in token)


class DrainParser:
    """Fixed-depth-tree online log parser.

    Parameters
    ----------
    depth:
        Number of leading tokens used as tree keys (Drain paper default 4;
        effective internal depth is ``depth - 2``).
    similarity_threshold:
        Minimum fraction of equal tokens for a message to join a group.
    max_children:
        Cap on children per internal node; overflow routes to a ``<*>``
        child, bounding memory on high-cardinality token positions.
    """

    def __init__(self, depth: int = 4, similarity_threshold: float = 0.5,
                 max_children: int = 100, mask: bool = True):
        if depth < 3:
            raise ValueError(f"depth must be >= 3, got {depth}")
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError(f"similarity_threshold must be in (0, 1], got {similarity_threshold}")
        self.depth = depth - 2
        self.similarity_threshold = similarity_threshold
        self.max_children = max_children
        self.mask = mask
        self._length_roots: dict[int, _Node] = {}
        self._templates: dict[int, LogTemplate] = {}
        self._next_id = 0
        registry = get_registry()
        self._parse_counter = registry.counter("drain.messages_parsed")
        self._template_counter = registry.counter("drain.templates_created")
        self._depth_histogram = registry.histogram(
            "drain.match_depth", boundaries=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)
        )

    # ------------------------------------------------------------------
    @property
    def templates(self) -> list[LogTemplate]:
        """All mined templates, ordered by id."""
        return [self._templates[i] for i in sorted(self._templates)]

    def num_templates(self) -> int:
        return len(self._templates)

    def get_template(self, template_id: int) -> LogTemplate:
        return self._templates[template_id]

    # ------------------------------------------------------------------
    def _route(self, tokens: list[str]) -> _Node:
        """Walk/extend the tree to the leaf node for this token sequence."""
        root = self._length_roots.setdefault(len(tokens), _Node())
        node = root
        for position in range(min(self.depth, len(tokens))):
            token = tokens[position]
            if _has_digit(token):
                token = WILDCARD
            child = node.children.get(token)
            if child is None:
                if token != WILDCARD and len(node.children) >= self.max_children:
                    token = WILDCARD
                    child = node.children.get(token)
                if child is None:
                    child = _Node()
                    node.children[token] = child
            node = child
        return node

    @staticmethod
    def _similarity(template_tokens: list[str], tokens: list[str]) -> float:
        if len(template_tokens) != len(tokens):
            return 0.0
        equal = sum(1 for a, b in zip(template_tokens, tokens) if a == b and a != WILDCARD)
        non_wild = sum(1 for a in template_tokens if a != WILDCARD)
        if non_wild == 0:
            return 1.0
        return equal / non_wild

    def parse(self, message: str) -> ParseResult:
        """Parse one message, creating or generalizing a template."""
        masked = mask_message(message) if self.mask else message
        tokens = masked.split()
        if not tokens:
            tokens = ["<EMPTY>"]
        self._parse_counter.inc()
        self._depth_histogram.observe(min(self.depth, len(tokens)))
        leaf = self._route(tokens)

        best: LogTemplate | None = None
        best_sim = 0.0
        for group in leaf.groups:
            sim = self._similarity(group.tokens, tokens)
            if sim > best_sim:
                best, best_sim = group, sim

        if best is None or best_sim < self.similarity_threshold:
            template = LogTemplate(template_id=self._next_id, tokens=list(tokens), count=1)
            self._next_id += 1
            leaf.groups.append(template)
            self._templates[template.template_id] = template
            self._template_counter.inc()
            return ParseResult(template=template, parameters=tuple(template.parameters_of(tokens)))

        # Generalize: disagreeing positions become wildcards.
        best.tokens = [
            a if a == b else WILDCARD for a, b in zip(best.tokens, tokens)
        ]
        best.count += 1
        return ParseResult(template=best, parameters=tuple(best.parameters_of(tokens)))

    def parse_all(self, messages: list[str]) -> list[ParseResult]:
        """Parse a batch of messages in order."""
        return [self.parse(m) for m in messages]

    # ------------------------------------------------------------------
    # Serialization (production pipelines persist the mined tree so event
    # ids stay stable across restarts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize the full parser state to plain JSON-able data."""

        def node_to_dict(node: _Node) -> dict:
            return {
                "children": {t: node_to_dict(c) for t, c in node.children.items()},
                "groups": [g.template_id for g in node.groups],
            }

        return {
            "depth": self.depth + 2,
            "similarity_threshold": self.similarity_threshold,
            "max_children": self.max_children,
            "mask": self.mask,
            "next_id": self._next_id,
            "templates": {
                str(tid): {"tokens": t.tokens, "count": t.count}
                for tid, t in self._templates.items()
            },
            "roots": {
                str(length): node_to_dict(root)
                for length, root in self._length_roots.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DrainParser":
        """Rebuild a parser previously serialized with :meth:`to_dict`."""
        parser = cls(
            depth=payload["depth"],
            similarity_threshold=payload["similarity_threshold"],
            max_children=payload["max_children"],
            mask=payload["mask"],
        )
        parser._next_id = payload["next_id"]
        parser._templates = {
            int(tid): LogTemplate(template_id=int(tid), tokens=list(spec["tokens"]),
                                  count=spec["count"])
            for tid, spec in payload["templates"].items()
        }

        def dict_to_node(spec: dict) -> _Node:
            node = _Node()
            node.children = {t: dict_to_node(c) for t, c in spec["children"].items()}
            node.groups = [parser._templates[tid] for tid in spec["groups"]]
            return node

        parser._length_roots = {
            int(length): dict_to_node(spec) for length, spec in payload["roots"].items()
        }
        return parser
