"""Template store: stable event-id assignment plus representative messages.

LogSynergy sends *one representative raw message per template* to the LLM
(§III-C), so the store remembers the first concrete message seen for each
template and exposes the template inventory for interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .drain import DrainParser, ParseResult

__all__ = ["TemplateStore", "ParsedLog"]


@dataclass(frozen=True)
class ParsedLog:
    """One parsed message: event id, template text, parameters."""

    event_id: int
    template_text: str
    parameters: tuple[str, ...]


class TemplateStore:
    """Wraps a :class:`DrainParser` with representative-message bookkeeping."""

    def __init__(self, parser: DrainParser | None = None):
        self.parser = parser or DrainParser()
        self._representatives: dict[int, str] = {}

    def ingest(self, message: str) -> ParsedLog:
        """Parse a message and record a representative if it is the first."""
        result: ParseResult = self.parser.parse(message)
        event_id = result.template.template_id
        self._representatives.setdefault(event_id, message)
        return ParsedLog(
            event_id=event_id,
            template_text=result.template.text,
            parameters=result.parameters,
        )

    def ingest_all(self, messages: list[str]) -> list[ParsedLog]:
        return [self.ingest(m) for m in messages]

    @property
    def event_ids(self) -> list[int]:
        return sorted(self._representatives)

    def representative(self, event_id: int) -> str:
        """The first raw message observed for this event."""
        return self._representatives[event_id]

    def template_text(self, event_id: int) -> str:
        return self.parser.get_template(event_id).text

    def inventory(self) -> dict[int, tuple[str, str]]:
        """event_id -> (template text, representative raw message)."""
        return {
            event_id: (self.template_text(event_id), self._representatives[event_id])
            for event_id in self.event_ids
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize parser tree + representatives (JSON-able)."""
        return {
            "parser": self.parser.to_dict(),
            "representatives": {str(k): v for k, v in self._representatives.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TemplateStore":
        """Rebuild a store serialized with :meth:`to_dict`."""
        store = cls(parser=DrainParser.from_dict(payload["parser"]))
        store._representatives = {
            int(k): v for k, v in payload["representatives"].items()
        }
        return store
