"""Variable masking applied before Drain template matching.

Real log parsers pre-mask obvious variable shapes (IPs, hex, numbers) so
the prefix tree keys on the stable tokens.  These regexes follow the
common Drain3-style defaults.
"""

from __future__ import annotations

import re

__all__ = ["mask_message", "DEFAULT_MASKS", "WILDCARD"]

WILDCARD = "<*>"

# Order matters: more specific shapes first.
DEFAULT_MASKS: tuple[tuple[str, re.Pattern], ...] = (
    ("uuid", re.compile(r"\b[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}\b", re.I)),
    ("ip_port", re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}:\d+\b")),
    ("ip", re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}\b")),
    ("hex", re.compile(r"\b0x[0-9a-fA-F]+\b")),
    ("path", re.compile(r"(?<![\w])/(?:[\w.-]+/)*[\w.-]+")),
    ("number", re.compile(r"(?<![\w.])\d+(?:\.\d+)?(?![\w])")),
)


def mask_message(message: str, masks=DEFAULT_MASKS) -> str:
    """Replace variable-shaped substrings with the ``<*>`` wildcard."""
    for _, pattern in masks:
        message = pattern.sub(WILDCARD, message)
    return message
