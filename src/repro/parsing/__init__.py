"""Log parsing substrate: the Drain fixed-depth-tree parser (§III-B)."""

from .masking import DEFAULT_MASKS, WILDCARD, mask_message
from .drain import DrainParser, LogTemplate, ParseResult
from .template_store import ParsedLog, TemplateStore

__all__ = [
    "mask_message", "DEFAULT_MASKS", "WILDCARD",
    "DrainParser", "LogTemplate", "ParseResult",
    "TemplateStore", "ParsedLog",
]
