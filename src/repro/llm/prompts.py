"""Prompt construction for LLM-based event interpretation (Fig 2).

The paper's prompts carry (1) a one-sentence description of the source
system to ground the interpretation, and (2) the representative log
message for the event, asking for a concise standardized restatement.
"""

from __future__ import annotations

__all__ = ["SYSTEM_DESCRIPTIONS", "build_interpretation_prompt", "extract_log_from_prompt"]

# Short system-context sentences, in the style of the paper's Fig 2 example
# ("The following logs come from an HPC system...").
SYSTEM_DESCRIPTIONS: dict[str, str] = {
    "bgl": "The following log comes from the BlueGene/L supercomputer (HPC system).",
    "spirit": "The following log comes from the Spirit supercomputing cluster (HPC system).",
    "thunderbird": "The following log comes from the Thunderbird supercomputer (HPC system).",
    "system_a": "The following log comes from a cloud data management system (distributed database).",
    "system_b": "The following log comes from a cloud data management system (storage middleware).",
    "system_c": "The following log comes from a cloud data management system (message/database broker).",
}

_INSTRUCTION = (
    "Interpret the log event in one concise sentence using standardized syntax. "
    "Expand abbreviations, keep the essential information common across systems, "
    "and omit system-specific identifiers."
)

_LOG_MARKER = "Log: "


def build_interpretation_prompt(system: str, log_message: str) -> str:
    """Assemble the Fig 2-style prompt for one representative log message."""
    description = SYSTEM_DESCRIPTIONS.get(
        system, "The following log comes from a software system."
    )
    return f"{description}\n{_INSTRUCTION}\n{_LOG_MARKER}{log_message}"


def extract_log_from_prompt(prompt: str) -> str:
    """Recover the log message embedded by :func:`build_interpretation_prompt`."""
    marker_at = prompt.rfind(_LOG_MARKER)
    if marker_at < 0:
        return prompt
    return prompt[marker_at + len(_LOG_MARKER):].strip()
