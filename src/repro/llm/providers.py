"""LLM provider contract and concrete upstream providers.

This module is the seam the paper's LEI stage needs in production: every
LLM the pipeline talks to — the offline :class:`SimulatedLLM`, a flaky
remote stand-in, or a hosted model — is an :class:`LLMProvider`.  The
contract is two methods:

* ``complete(prompt)`` — one prompt, one completion (abstract).
* ``complete_batch(prompts)`` — many prompts, order-preserving; the
  default implementation loops over ``complete`` so existing one-method
  clients inherit a correct batch path for free, while real endpoints
  (or the middleware stack) override it with something smarter.

``isinstance(x, LLMProvider)`` stays structural (anything with a
callable ``complete`` qualifies), so duck-typed clients written against
the old ``LLMClient`` Protocol keep working unchanged.

:class:`FlakyLLM` simulates the remote-endpoint failure modes a
millions-of-users deployment must absorb — seeded latency/jitter,
transient errors, and format-breaking hallucination bursts — so the
middleware stack (:mod:`repro.llm.middleware`) and ``repro fuzz`` can be
exercised against realistic misbehaviour, deterministically.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from ..testing.faultpoints import fault_point

__all__ = ["LLMProvider", "ProviderError", "FlakyLLM", "garble"]


class ProviderError(RuntimeError):
    """A transient upstream failure (rate limit, 5xx, connection reset).

    The retry/breaker middleware treats exactly this type as retryable;
    anything else propagates as a programming error.
    """


class LLMProvider(abc.ABC):
    """The provider contract every LLM call site goes through.

    Replaces the one-method ``LLMClient`` Protocol as ``repro.llm``'s
    exported contract (``LLMClient`` remains importable as a deprecated
    alias).  Subclasses implement :meth:`complete`; :meth:`complete_batch`
    has a loop fallback so single-prompt providers are batch-correct by
    construction.
    """

    @abc.abstractmethod
    def complete(self, prompt: str) -> str:
        """Return the model's completion for ``prompt``."""

    def complete_batch(self, prompts: Sequence[str]) -> list[str]:
        """Order-preserving batch completion (default: loop fallback)."""
        return [self.complete(prompt) for prompt in prompts]

    @classmethod
    def __subclasshook__(cls, subclass: type):
        # Structural acceptance mirrors the old runtime_checkable
        # Protocol: any class with a callable ``complete`` passes
        # isinstance/issubclass, so third-party clients need no base.
        if cls is LLMProvider:
            if callable(getattr(subclass, "complete", None)):
                return True
        return NotImplemented


def garble(text: str) -> str:
    """Format-breaking corruption (unexpanded wildcard) the operator
    review loop in :mod:`repro.llm.interpreter` is designed to catch."""
    return f"{text} <*>"


class FlakyLLM(LLMProvider):
    """A deterministic simulation of an unreliable hosted endpoint.

    Wraps any provider (default: a fresh :class:`SimulatedLLM`) and,
    per call, draws from a seeded RNG to decide whether to:

    * sleep ``latency + U(0, jitter)`` seconds through the injectable
      ``sleep`` (no-op by default, so tests and fuzz stay fast);
    * raise :class:`ProviderError` with probability ``error_rate``
      (*before* consulting the inner provider, like a failed request);
    * garble the completion with probability ``hallucination_rate``
      (format-breaking output, distinct from the inner simulator's
      semantically-wrong hallucinations).

    The error draw never consumes the inner provider's RNG, so a retried
    prompt completes to exactly what a fault-free run would produce —
    the property the ``flaky-provider-within-retry-budget`` fuzz
    invariant pins down.

    The completion passes through the ``llm.provider.complete`` fault
    point, so ``repro fuzz`` plans can attack the full middleware stack
    at the provider boundary.
    """

    def __init__(self, inner: LLMProvider | None = None, *,
                 error_rate: float = 0.0, latency: float = 0.0,
                 jitter: float = 0.0, hallucination_rate: float = 0.0,
                 seed: int = 0, sleep: Callable[[float], None] | None = None):
        for name, rate in (("error_rate", error_rate),
                           ("hallucination_rate", hallucination_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if latency < 0 or jitter < 0:
            raise ValueError(f"latency/jitter must be non-negative, "
                             f"got {latency}/{jitter}")
        if inner is None:
            # Local import: simulated.py subclasses this module's ABC.
            from .simulated import SimulatedLLM

            inner = SimulatedLLM(seed=seed)
        self.inner = inner
        self.error_rate = error_rate
        self.latency = latency
        self.jitter = jitter
        self.hallucination_rate = hallucination_rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep if sleep is not None else _no_sleep
        self.calls = 0
        self.errors = 0
        self.slept = 0.0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        if self.latency > 0 or self.jitter > 0:
            pause = self.latency + (self.jitter * float(self._rng.random())
                                    if self.jitter > 0 else 0.0)
            self.slept += pause
            self._sleep(pause)
        if self.error_rate > 0 and self._rng.random() < self.error_rate:
            self.errors += 1
            raise ProviderError(
                f"injected upstream failure (call {self.calls}, "
                f"error_rate={self.error_rate})")
        completion = self.inner.complete(prompt)
        if (self.hallucination_rate > 0
                and self._rng.random() < self.hallucination_rate):
            completion = garble(completion)
        return fault_point("llm.provider.complete", completion)


def _no_sleep(_seconds: float) -> None:
    return None
