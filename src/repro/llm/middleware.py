"""Composable traffic-control middleware over any :class:`LLMProvider`.

The LEI stage puts an LLM on the hot path of onboarding every new
system; at production traffic the provider boundary needs the same
controls any remote dependency gets.  Each middleware here is itself an
:class:`~repro.llm.providers.LLMProvider` wrapping an inner one, so the
stack composes freely and every call site stays provider-agnostic.

**Ordering contract** (outermost first — :func:`build_provider_stack`
enforces it):

1. :class:`MemoryCacheMiddleware` — TTL+LRU memory tier; hits skip the
   whole stack (and any disk :class:`~repro.llm.cache.CachedLLM` below).
2. :class:`CoalescingMiddleware` — concurrent identical prompts share
   one upstream flight; batches dedupe to distinct prompts.
3. :class:`CircuitBreakerMiddleware` — after ``unhealthy_after``
   consecutive *budget-exhausted* failures, degrade to the
   pattern-library fallback and probe per the shared
   :class:`~repro.runtime.health.HealthMonitor` state machine.
4. :class:`HedgedRetryMiddleware` — jittered exponential backoff,
   optionally hedging retries to a secondary provider.
5. :class:`RateLimitMiddleware` — token bucket; every real upstream
   attempt (including retries) pays a token.

Cache above coalescing so the fast path is lock-free; breaker above
retry so it only counts failures the retry budget could not absorb;
rate limit innermost so hedges and retries cannot exceed the upstream
quota.  All activity is mirrored into ``repro.obs`` under
``llm.provider.*``.

Every middleware takes injectable ``clock``/``sleep``/``seed`` knobs, so
the whole stack is deterministic under test and fuzz harnesses — the
``flaky-provider-within-retry-budget`` invariant drives a flaky upstream
through this exact composition.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from ..obs import get_registry
from .prompts import extract_log_from_prompt
from .providers import LLMProvider, ProviderError
from .simulated import fallback_rewrite

__all__ = [
    "ProviderMiddleware", "MemoryCacheMiddleware", "CoalescingMiddleware",
    "CircuitBreakerMiddleware", "HedgedRetryMiddleware", "RateLimitMiddleware",
    "RateLimitExceeded", "pattern_fallback", "build_provider_stack",
]


def _key(prompt: str) -> str:
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()


def _no_sleep(_seconds: float) -> None:
    return None


def pattern_fallback(prompt: str) -> str:
    """Degraded completion: the normalized rewrite the pattern-library
    path would embed (what "LogSynergy w/o LEI" serves), derived from
    the log line inside the prompt — no model required."""
    return fallback_rewrite(extract_log_from_prompt(prompt))


class ProviderMiddleware(LLMProvider):
    """Base pass-through wrapper; subclasses override one concern."""

    def __init__(self, inner: LLMProvider):
        self.inner = inner

    def complete(self, prompt: str) -> str:
        return self.inner.complete(prompt)

    def complete_batch(self, prompts: Sequence[str]) -> list[str]:
        return self.inner.complete_batch(prompts)


class MemoryCacheMiddleware(ProviderMiddleware):
    """TTL + LRU in-memory tier over the (disk-backed) inner provider.

    Entries expire ``ttl`` seconds after insertion (``None`` = never)
    and the least-recently-used entry is evicted beyond ``capacity``.
    Counters: ``llm.provider.memcache.{hits,misses,evictions,expired}``.
    """

    def __init__(self, inner: LLMProvider, *, capacity: int = 4096,
                 ttl: float | None = None,
                 clock: Callable[[], float] | None = None, registry=None):
        super().__init__(inner)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        registry = registry if registry is not None else get_registry()
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock or registry.clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[str, float]] = OrderedDict()
        self._hits = registry.counter("llm.provider.memcache.hits")
        self._misses = registry.counter("llm.provider.memcache.misses")
        self._evictions = registry.counter("llm.provider.memcache.evictions")
        self._expired = registry.counter("llm.provider.memcache.expired")

    def __len__(self) -> int:
        return len(self._entries)

    def _lookup(self, key: str, now: float) -> str | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            value, expires_at = entry
            if self.ttl is not None and now >= expires_at:
                del self._entries[key]
                self._expired.inc()
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return value

    def _store(self, key: str, value: str, now: float) -> None:
        expires_at = now + self.ttl if self.ttl is not None else float("inf")
        with self._lock:
            self._entries[key] = (value, expires_at)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def complete(self, prompt: str) -> str:
        now = self._clock()
        key = _key(prompt)
        cached = self._lookup(key, now)
        if cached is not None:
            return cached
        value = self.inner.complete(prompt)
        self._store(key, value, self._clock())
        return value

    def complete_batch(self, prompts: Sequence[str]) -> list[str]:
        now = self._clock()
        results: dict[int, str] = {}
        missing: list[str] = []
        missing_first: dict[str, int] = {}
        pending: dict[int, str] = {}
        for index, prompt in enumerate(prompts):
            key = _key(prompt)
            cached = self._lookup(key, now)
            if cached is not None:
                results[index] = cached
                continue
            pending[index] = key
            # Dedupe within the batch: each distinct miss goes upstream once.
            if key not in missing_first:
                missing_first[key] = len(missing)
                missing.append(prompt)
        if missing:
            fetched = self.inner.complete_batch(missing)
            stored_at = self._clock()
            by_key = {_key(p): value for p, value in zip(missing, fetched)}
            for key, value in by_key.items():
                self._store(key, value, stored_at)
            for index, key in pending.items():
                results[index] = by_key[key]
        return [results[index] for index in range(len(prompts))]


class _Flight:
    """One in-flight upstream completion shared by coalesced callers."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: str | None = None
        self.error: BaseException | None = None


class CoalescingMiddleware(ProviderMiddleware):
    """Deduplicates identical in-flight prompts.

    The first caller of a prompt becomes the *leader* and performs the
    upstream call; concurrent callers of the same prompt wait on the
    leader's flight and share its result (or its failure).  Batches are
    deduplicated to their distinct prompts before going upstream.  Each
    avoided upstream call increments ``llm.provider.coalesced``.
    """

    def __init__(self, inner: LLMProvider, *, registry=None):
        super().__init__(inner)
        registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}
        self._coalesced = registry.counter("llm.provider.coalesced")
        self._leaders = registry.counter("llm.provider.coalesce.leaders")

    def complete(self, prompt: str) -> str:
        key = _key(prompt)
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            self._coalesced.inc()
            if flight.error is not None:
                raise flight.error
            return flight.value
        self._leaders.inc()
        try:
            flight.value = self.inner.complete(prompt)
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
        return flight.value

    def complete_batch(self, prompts: Sequence[str]) -> list[str]:
        order: dict[str, int] = {}
        unique: list[str] = []
        for prompt in prompts:
            if prompt not in order:
                order[prompt] = len(unique)
                unique.append(prompt)
        duplicates = len(prompts) - len(unique)
        if duplicates:
            self._coalesced.inc(duplicates)
        fetched = self.inner.complete_batch(unique)
        return [fetched[order[prompt]] for prompt in prompts]


class CircuitBreakerMiddleware(ProviderMiddleware):
    """Open/probe/close degradation to the pattern-library fallback.

    Reuses the :class:`~repro.runtime.health.HealthMonitor` state
    machine extracted from the runtime's :class:`WorkerSupervisor`, so
    an LLM outage degrades exactly the way an unhealthy inference worker
    does: ``unhealthy_after`` consecutive failures open the breaker;
    while open, every prompt is answered by ``fallback`` immediately
    (``llm.provider.degraded``); after ``cooldown`` seconds the next
    prompt is a half-open probe whose failure doubles the cooldown
    (capped 16x) and whose success closes the breaker.

    Only :class:`~repro.llm.providers.ProviderError` trips the breaker —
    anything else is a programming error and propagates.
    """

    def __init__(self, inner: LLMProvider, *,
                 fallback: Callable[[str], str] | None = None,
                 unhealthy_after: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] | None = None, registry=None):
        super().__init__(inner)
        # Local import: repro.runtime's package init reaches repro.core,
        # which imports repro.llm — a module-level import here would cycle.
        from ..runtime.health import HealthMonitor

        registry = registry if registry is not None else get_registry()
        self.monitor = HealthMonitor(unhealthy_after=unhealthy_after,
                                     cooldown=cooldown)
        self._fallback = fallback if fallback is not None else pattern_fallback
        self._clock = clock or registry.clock
        self.last_error: BaseException | None = None
        self._opened = registry.counter("llm.provider.breaker.opened")
        self._probes = registry.counter("llm.provider.breaker.probes")
        self._closed = registry.counter("llm.provider.breaker.closed")
        self._degraded = registry.counter("llm.provider.degraded")

    def _degrade(self, prompt: str) -> str:
        self._degraded.inc()
        return self._fallback(prompt)

    def complete(self, prompt: str) -> str:
        monitor = self.monitor
        if not monitor.healthy:
            if not monitor.ready_to_probe(self._clock()):
                return self._degrade(prompt)
            self._probes.inc()
            try:
                value = self.inner.complete(prompt)
            except ProviderError as exc:
                self.last_error = exc
                monitor.probe_failed(self._clock())
                return self._degrade(prompt)
            monitor.probe_succeeded()
            self._closed.inc()
            self.last_error = None
            return value
        try:
            value = self.inner.complete(prompt)
        except ProviderError as exc:
            self.last_error = exc
            if monitor.record_bad(self._clock()):
                self._opened.inc()
            return self._degrade(prompt)
        monitor.record_good()
        return value

    def complete_batch(self, prompts: Sequence[str]) -> list[str]:
        # Per-prompt on purpose: one bad prompt must not poison a whole
        # batch, and the health streak advances per upstream attempt.
        return [self.complete(prompt) for prompt in prompts]


class HedgedRetryMiddleware(ProviderMiddleware):
    """Bounded retries with jittered exponential backoff, optionally
    hedged to a secondary provider.

    Attempt 0 always goes to ``inner``; once it fails, retries alternate
    between the ``hedge`` provider (when given) and ``inner``, so a
    single slow/broken primary does not consume the whole budget.  The
    backoff before retry *n* is ``min(base * 2**(n-1), cap) * (1 +
    jitter * U(0,1))`` from a seeded RNG — deterministic under test.
    Only :class:`~repro.llm.providers.ProviderError` is retried.
    """

    def __init__(self, inner: LLMProvider, *, hedge: LLMProvider | None = None,
                 max_retries: int = 2, backoff_base: float = 0.05,
                 backoff_cap: float = 1.0, jitter: float = 0.5,
                 seed: int = 0, sleep: Callable[[float], None] | None = None,
                 registry=None):
        super().__init__(inner)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        registry = registry if registry is not None else get_registry()
        self.hedge = hedge
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep if sleep is not None else _no_sleep
        self._retries = registry.counter("llm.provider.retries")
        self._hedged = registry.counter("llm.provider.hedged")

    def _backoff(self, retry_index: int) -> float:
        base = min(self.backoff_base * (2 ** retry_index), self.backoff_cap)
        return base * (1.0 + self.jitter * float(self._rng.random()))

    def complete(self, prompt: str) -> str:
        error: ProviderError | None = None
        for attempt in range(1 + self.max_retries):
            provider = self.inner
            if attempt > 0:
                self._retries.inc()
                self._sleep(self._backoff(attempt - 1))
                if self.hedge is not None and attempt % 2 == 1:
                    provider = self.hedge
                    self._hedged.inc()
            try:
                return provider.complete(prompt)
            except ProviderError as exc:
                error = exc
        raise error


class RateLimitExceeded(ProviderError):
    """Raised in non-blocking mode when the token bucket is empty."""


class RateLimitMiddleware(ProviderMiddleware):
    """Token-bucket rate limiting of upstream calls.

    The bucket holds up to ``burst`` tokens and refills at ``rate``
    tokens/second by the injected clock; each upstream call consumes
    one.  When empty, blocking mode sleeps (injectable) until a token
    accrues; non-blocking mode raises :class:`RateLimitExceeded`
    (a :class:`ProviderError`, so the retry tier backs off and retries).

    Robust to clock skew: a clock that jumps backwards never mints
    tokens and never rewinds the refill origin, so the enforced rate is
    an upper bound even under a skewed clock.
    """

    def __init__(self, inner: LLMProvider, *, rate: float, burst: float = 1.0,
                 block: bool = True, clock: Callable[[], float] | None = None,
                 sleep: Callable[[float], None] | None = None, registry=None):
        super().__init__(inner)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        registry = registry if registry is not None else get_registry()
        self.rate = rate
        self.burst = float(burst)
        self.block = block
        self._clock = clock or registry.clock
        self._sleep = sleep if sleep is not None else _no_sleep
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._refilled_at = self._clock()
        self._throttled = registry.counter("llm.provider.throttled")
        self._waited = registry.counter("llm.provider.throttle_wait_seconds")

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now) — for tests/ops."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def _refill(self, now: float) -> None:
        # Skew guard: elapsed is clamped at zero and the origin never
        # rewinds, so backwards clock jumps cannot mint tokens.
        elapsed = max(0.0, now - self._refilled_at)
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    def _acquire(self) -> None:
        throttled = False
        while True:
            with self._lock:
                self._refill(self._clock())
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return
                needed = (1.0 - self._tokens) / self.rate
            if not self.block:
                self._throttled.inc()
                raise RateLimitExceeded(
                    f"token bucket empty (rate={self.rate}/s); "
                    f"retry in {needed:.3f}s")
            if not throttled:
                throttled = True
                self._throttled.inc()
            self._waited.inc(needed)
            self._sleep(needed)

    def complete(self, prompt: str) -> str:
        self._acquire()
        return self.inner.complete(prompt)

    def complete_batch(self, prompts: Sequence[str]) -> list[str]:
        # One token per prompt: a batch cannot sidestep the quota.
        for _ in prompts:
            self._acquire()
        return self.inner.complete_batch(prompts)


def build_provider_stack(
    provider: LLMProvider, *,
    memory_cache: bool = True, capacity: int = 4096, ttl: float | None = None,
    coalesce: bool = True,
    breaker: bool = True, unhealthy_after: int = 3, cooldown: float = 30.0,
    fallback: Callable[[str], str] | None = None,
    max_retries: int = 2, hedge: LLMProvider | None = None,
    backoff_base: float = 0.05, backoff_cap: float = 1.0, jitter: float = 0.5,
    rate: float | None = None, burst: float = 1.0,
    seed: int = 0, clock: Callable[[], float] | None = None,
    sleep: Callable[[float], None] | None = None, registry=None,
) -> LLMProvider:
    """Compose the full middleware stack in contract order.

    ``rate=None`` disables the token bucket, ``max_retries=0`` the retry
    tier, and the boolean switches the rest; what remains always nests
    per the module-level ordering contract.  The shared ``clock`` /
    ``sleep`` / ``seed`` knobs keep a fully-enabled stack deterministic
    (``repro replay`` is byte-identical with the stack on).
    """
    stacked = provider
    if rate is not None:
        stacked = RateLimitMiddleware(stacked, rate=rate, burst=burst,
                                      clock=clock, sleep=sleep,
                                      registry=registry)
    if max_retries > 0:
        stacked = HedgedRetryMiddleware(stacked, hedge=hedge,
                                        max_retries=max_retries,
                                        backoff_base=backoff_base,
                                        backoff_cap=backoff_cap, jitter=jitter,
                                        seed=seed, sleep=sleep,
                                        registry=registry)
    if breaker:
        stacked = CircuitBreakerMiddleware(stacked, fallback=fallback,
                                           unhealthy_after=unhealthy_after,
                                           cooldown=cooldown, clock=clock,
                                           registry=registry)
    if coalesce:
        stacked = CoalescingMiddleware(stacked, registry=registry)
    if memory_cache:
        stacked = MemoryCacheMiddleware(stacked, capacity=capacity, ttl=ttl,
                                        clock=clock, registry=registry)
    return stacked
