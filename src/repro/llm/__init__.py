"""LLM-based event interpretation (LEI) substrate.

Ships a :class:`SimulatedLLM` stand-in for ChatGPT-4o plus the LEI
pipeline (prompting, interpretation, operator review/regeneration) and
the production provider stack: every LLM the pipeline talks to is an
:class:`LLMProvider` (``complete`` / ``complete_batch``), composed with
traffic-control middleware — memory cache, request coalescing, circuit
breaker, hedged retries, rate limiting (:mod:`repro.llm.middleware`) —
and selected by one CLI-wide spec grammar (:mod:`repro.llm.factory`).

``LLMClient`` remains importable as a deprecated alias of
:class:`LLMProvider`.
"""

import warnings

from .prompts import SYSTEM_DESCRIPTIONS, build_interpretation_prompt, extract_log_from_prompt
from .providers import FlakyLLM, LLMProvider, ProviderError, garble
from .simulated import SimulatedLLM, fallback_rewrite, normalize_tokens
from .cache import CachedLLM
from .middleware import (
    CircuitBreakerMiddleware,
    CoalescingMiddleware,
    HedgedRetryMiddleware,
    MemoryCacheMiddleware,
    ProviderMiddleware,
    RateLimitExceeded,
    RateLimitMiddleware,
    build_provider_stack,
    pattern_fallback,
)
from .interpreter import EventInterpreter, InterpretationReport, review_interpretation
from .factory import (
    DEFAULT_SPEC,
    default_provider,
    parse_provider_spec,
    provider_from_spec,
    resolve_provider,
)

__all__ = [
    "LLMProvider", "ProviderError", "FlakyLLM", "garble", "LLMClient",
    "CachedLLM",
    "build_interpretation_prompt", "extract_log_from_prompt", "SYSTEM_DESCRIPTIONS",
    "SimulatedLLM", "normalize_tokens", "fallback_rewrite",
    "ProviderMiddleware", "MemoryCacheMiddleware", "CoalescingMiddleware",
    "CircuitBreakerMiddleware", "HedgedRetryMiddleware", "RateLimitMiddleware",
    "RateLimitExceeded", "build_provider_stack", "pattern_fallback",
    "EventInterpreter", "InterpretationReport", "review_interpretation",
    "DEFAULT_SPEC", "parse_provider_spec", "provider_from_spec",
    "default_provider", "resolve_provider",
]


def __getattr__(name: str):
    if name == "LLMClient":
        warnings.warn(
            "repro.llm.LLMClient is deprecated; use repro.llm.LLMProvider "
            "(same structural contract, plus complete_batch).",
            DeprecationWarning,
            stacklevel=2,
        )
        return LLMProvider
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
