"""LLM-based event interpretation (LEI) substrate.

Ships a :class:`SimulatedLLM` stand-in for ChatGPT-4o plus the LEI
pipeline (prompting, interpretation, operator review/regeneration).
Any object satisfying :class:`LLMClient` can replace the simulator to run
against a hosted model.
"""

from .interface import LLMClient
from .cache import CachedLLM
from .prompts import SYSTEM_DESCRIPTIONS, build_interpretation_prompt, extract_log_from_prompt
from .simulated import SimulatedLLM, normalize_tokens
from .interpreter import EventInterpreter, InterpretationReport, review_interpretation

__all__ = [
    "LLMClient", "CachedLLM",
    "build_interpretation_prompt", "extract_log_from_prompt", "SYSTEM_DESCRIPTIONS",
    "SimulatedLLM", "normalize_tokens",
    "EventInterpreter", "InterpretationReport", "review_interpretation",
]
