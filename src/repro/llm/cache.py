"""Persistent interpretation cache.

Production deployments interpret each template once and reuse the result
across retrains and restarts (LLM calls cost money and minutes; §VI-B2).
``CachedLLM`` wraps any :class:`LLMClient` with a JSON-file-backed cache
keyed by the prompt, so repeated pipelines hit the LLM only for genuinely
new templates.

Use it as a context manager for bulk runs so nothing leaks on error::

    with CachedLLM(SimulatedLLM(), "cache.json", autosave=False) as llm:
        model = LogSynergy(config, llm=llm)
        model.fit(sources, target, target_train)
    # cache saved on exit, even if fit raised
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..obs import get_registry
from .interface import LLMClient

__all__ = ["CachedLLM"]


def _key(prompt: str) -> str:
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()


class CachedLLM:
    """File-backed memoization wrapper around an LLM client.

    Parameters
    ----------
    inner:
        The real client (simulated or hosted).
    path:
        JSON cache file; created on first save, loaded if present.
    autosave:
        Persist after every new completion (safe default); set ``False``
        and use the context-manager form (or call :meth:`save`) for bulk
        runs.

    Hit/miss/invalidation totals are mirrored into the active
    ``repro.obs`` registry as ``llm.cache.hits`` / ``llm.cache.misses``
    / ``llm.cache.invalidations``.
    """

    def __init__(self, inner: LLMClient, path: str | Path, autosave: bool = True):
        self.inner = inner
        self.path = Path(path)
        self.autosave = autosave
        self.hits = 0
        self.misses = 0
        registry = get_registry()
        self._hit_counter = registry.counter("llm.cache.hits")
        self._miss_counter = registry.counter("llm.cache.misses")
        self._invalidation_counter = registry.counter("llm.cache.invalidations")
        self._cache: dict[str, str] = {}
        if self.path.exists():
            try:
                self._cache = json.loads(self.path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError) as exc:
                raise ValueError(f"corrupt interpretation cache at {self.path}") from exc
            if not isinstance(self._cache, dict):
                raise ValueError(f"corrupt interpretation cache at {self.path}")

    def __len__(self) -> int:
        return len(self._cache)

    # -- context manager: always persist, even on exceptions -------------
    def __enter__(self) -> "CachedLLM":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.save()
        return False

    def complete(self, prompt: str) -> str:
        """Return the completion, from cache when available."""
        key = _key(prompt)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._hit_counter.inc()
            return cached
        self.misses += 1
        self._miss_counter.inc()
        completion = self.inner.complete(prompt)
        self._cache[key] = completion
        if self.autosave:
            self.save()
        return completion

    def invalidate(self, prompt: str) -> bool:
        """Drop one cached completion (e.g. after a failed operator review)."""
        removed = self._cache.pop(_key(prompt), None) is not None
        if removed:
            self._invalidation_counter.inc()
            if self.autosave:
                self.save()
        return removed

    def save(self) -> None:
        """Persist state to disk."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._cache, indent=0), encoding="utf-8")
