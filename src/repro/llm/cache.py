"""Persistent interpretation cache.

Production deployments interpret each template once and reuse the result
across retrains and restarts (LLM calls cost money and minutes; §VI-B2).
``CachedLLM`` wraps any :class:`LLMProvider` with a JSON-file-backed cache
keyed by the prompt, so repeated pipelines hit the LLM only for genuinely
new templates.

Use it as a context manager for bulk runs so nothing leaks on error::

    with CachedLLM(SimulatedLLM(), "cache.json", autosave=False) as llm:
        model = LogSynergy(config, llm=llm)
        model.fit(sources, target, target_train)
    # cache saved on exit, even if fit raised
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Callable

from ..obs import get_registry
from ..testing.faultpoints import fault_point
from .providers import LLMProvider

__all__ = ["CachedLLM"]


def _key(prompt: str) -> str:
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()


class CachedLLM(LLMProvider):
    """File-backed memoization wrapper around an LLM provider.

    Parameters
    ----------
    inner:
        The real client (simulated or hosted).
    path:
        JSON cache file; created on first save, loaded if present.
    autosave:
        Persist after every new completion (safe default); set ``False``
        and use the context-manager form (or call :meth:`save`) for bulk
        runs.
    quarantine:
        On a malformed/truncated cache file (torn write, disk fault),
        rename it aside as ``<name>.corrupt-<ts>`` and start from an
        empty cache — entries regenerate on demand.  Set ``False`` to
        get the old fail-stop ``ValueError`` (forensics workflows).
    clock:
        Timestamp source for quarantine filenames (injectable for
        deterministic tests).

    Hit/miss/invalidation totals are mirrored into the active
    ``repro.obs`` registry as ``llm.cache.hits`` / ``llm.cache.misses``
    / ``llm.cache.invalidated`` (plus the legacy spelling
    ``llm.cache.invalidations``); each quarantined file increments
    ``llm.cache.quarantined``, live entry counts track in the
    ``llm.cache.entries`` and ``llm.cache.regenerated_live`` gauges.
    """

    def __init__(self, inner: LLMProvider, path: str | Path, autosave: bool = True,
                 *, quarantine: bool = True,
                 clock: Callable[[], float] = time.time):
        self.inner = inner
        self.path = Path(path)
        self.autosave = autosave
        self.quarantine = quarantine
        self.hits = 0
        self.misses = 0
        self._clock = clock
        registry = get_registry()
        self._hit_counter = registry.counter("llm.cache.hits")
        self._miss_counter = registry.counter("llm.cache.misses")
        # Canonical invalidation counter plus the legacy spelling older
        # dashboards scrape; both advance in lockstep.
        self._invalidated_counter = registry.counter("llm.cache.invalidated")
        self._invalidation_counter = registry.counter("llm.cache.invalidations")
        self._quarantine_counter = registry.counter("llm.cache.quarantined")
        self._entries_gauge = registry.gauge("llm.cache.entries")
        self._regenerated_gauge = registry.gauge("llm.cache.regenerated_live")
        # Keys stored after a quarantine event (regenerated on demand);
        # tracked so invalidation keeps the regenerated-live gauge honest.
        self._regenerated: set[str] = set()
        self._was_quarantined = False
        self._cache: dict[str, str] = {}
        if self.path.exists():
            self._cache = self.load()
        self._entries_gauge.set(len(self._cache))

    def load(self) -> dict[str, str]:
        """Parse the cache file, quarantining it when corrupt.

        Returns the cached completions; a malformed or truncated file is
        renamed aside (``quarantine=True``) and an empty cache returned,
        or raises ``ValueError`` (``quarantine=False``).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"unreadable interpretation cache at {self.path}") from exc
        text = fault_point("llm.cache.load", text)
        try:
            cache = json.loads(text)
        except json.JSONDecodeError:
            cache = None
        if isinstance(cache, dict):
            return cache
        if not self.quarantine:
            raise ValueError(f"corrupt interpretation cache at {self.path}")
        self.path.rename(self._quarantine_target())
        self._quarantine_counter.inc()
        self._was_quarantined = True
        return {}

    def _quarantine_target(self) -> Path:
        stamp = int(self._clock())
        candidate = self.path.with_name(f"{self.path.name}.corrupt-{stamp}")
        serial = 0
        while candidate.exists():
            serial += 1
            candidate = self.path.with_name(
                f"{self.path.name}.corrupt-{stamp}-{serial}")
        return candidate

    def __len__(self) -> int:
        return len(self._cache)

    # -- context manager: always persist, even on exceptions -------------
    def __enter__(self) -> "CachedLLM":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.save()
        return False

    def complete(self, prompt: str) -> str:
        """Return the completion, from cache when available."""
        key = _key(prompt)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._hit_counter.inc()
            return cached
        self.misses += 1
        self._miss_counter.inc()
        completion = self.inner.complete(prompt)
        self._cache[key] = completion
        self._entries_gauge.add(1)
        if self._was_quarantined:
            self._regenerated.add(key)
            self._regenerated_gauge.add(1)
        if self.autosave:
            self.save()
        return completion

    def invalidate(self, prompt: str) -> bool:
        """Drop one cached completion (e.g. after a failed operator review).

        Emits ``llm.cache.invalidated`` (and the legacy
        ``llm.cache.invalidations``) and keeps the entry gauges honest —
        including for entries regenerated after a quarantine, which
        previously stayed counted as live after being dropped.
        """
        key = _key(prompt)
        removed = self._cache.pop(key, None) is not None
        if removed:
            self._invalidated_counter.inc()
            self._invalidation_counter.inc()
            self._entries_gauge.add(-1)
            if key in self._regenerated:
                self._regenerated.discard(key)
                self._regenerated_gauge.add(-1)
            if self.autosave:
                self.save()
        return removed

    def save(self) -> None:
        """Persist state to disk."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._cache, indent=0), encoding="utf-8")
