"""Simulated LLM for offline event interpretation.

The paper uses ChatGPT-4o to rewrite each log template into a standardized
one-sentence interpretation.  No hosted model is reachable here, so this
module simulates the *capability that matters for LogSynergy*: an LLM
"knows" what operational events log lines describe, independent of each
system's surface syntax, and restates them in a uniform vocabulary.

The simulator carries a knowledge base of phrase skeletons (constant
tokens of every dialect rendering of every concept in
:mod:`repro.logs.events`) mapped to that concept's canonical
interpretation.  Given a log message, it scores the message's tokens
against every skeleton and returns the best concept's canonical sentence.
Messages that match nothing (templates outside the catalog, e.g. from real
log files) fall back to a normalizing rewrite — lowercased, de-numbered,
abbreviation-expanded — which is what a real LLM does for unseen events.

Hallucination (§III-C, §IV-E2) is reproduced with ``hallucination_rate``:
with that probability the simulator returns a *wrong* interpretation
(another concept's sentence or a corrupted one), which the operator-review
loop in :mod:`repro.llm.interpreter` is designed to catch.
"""

from __future__ import annotations

import re

import numpy as np

from ..logs.events import CONCEPTS, EventConcept
from ..testing.faultpoints import fault_point
from .prompts import extract_log_from_prompt
from .providers import LLMProvider

__all__ = ["SimulatedLLM", "normalize_tokens", "fallback_rewrite"]

_TOKEN_SPLIT = re.compile(r"[^a-z0-9]+")
_NUMBERLIKE = re.compile(r"^(?:\d+|0x[0-9a-f]+)$")

# Abbreviation expansion applied in fallback rewrites — mirrors the paper's
# example of the LLM expanding "Los" to "loss of signal".
_ABBREVIATIONS = {
    "los": "loss of signal",
    "rc": "return code",
    "rss": "resident memory",
    "rps": "requests per second",
    "crc": "cyclic redundancy check",
    "oom": "out of memory",
    "fs": "filesystem",
    "rpc": "remote procedure call",
    "tcp": "network transport",
    "wal": "write-ahead log",
}

# Tokens so common across templates that they carry no signal for matching.
_STOPWORDS = {"the", "a", "an", "of", "on", "in", "to", "for", "from", "by", "at", "is", "and", "with"}


def normalize_tokens(text: str) -> list[str]:
    """Lowercase, split on non-alphanumerics, drop numbers and stopwords."""
    tokens = [t for t in _TOKEN_SPLIT.split(text.lower()) if t]
    return [t for t in tokens if t not in _STOPWORDS and not _NUMBERLIKE.match(t)]


def fallback_rewrite(message: str) -> str:
    """Normalizing rewrite for messages outside the knowledge base.

    Module-level so degraded paths (the circuit breaker's
    pattern-library fallback in :mod:`repro.llm.middleware`) can produce
    the same rewrite without holding a simulator instance.
    """
    tokens = [t for t in _TOKEN_SPLIT.split(message.lower()) if t]
    rewritten = []
    for token in tokens:
        if _NUMBERLIKE.match(token):
            continue
        rewritten.append(_ABBREVIATIONS.get(token, token))
    sentence = " ".join(rewritten).strip()
    if not sentence:
        sentence = "unrecognized log event"
    return f"Event: {sentence}."


class SimulatedLLM(LLMProvider):
    """Deterministic stand-in for the ChatGPT-4o interpreter.

    Parameters
    ----------
    hallucination_rate:
        Probability of returning an incorrect interpretation for a query.
    match_threshold:
        Minimum skeleton-overlap score to accept a knowledge-base match;
        below it the fallback rewrite is used.
    seed:
        Seed for the hallucination draw (determinism for tests).
    """

    def __init__(self, hallucination_rate: float = 0.0, match_threshold: float = 0.35,
                 seed: int = 0):
        if not 0.0 <= hallucination_rate < 1.0:
            raise ValueError(f"hallucination_rate must be in [0, 1), got {hallucination_rate}")
        self.hallucination_rate = hallucination_rate
        self.match_threshold = match_threshold
        self._rng = np.random.default_rng(seed)
        self._knowledge: list[tuple[frozenset[str], EventConcept]] = []
        for concept in CONCEPTS:
            for phrase in concept.phrases.values():
                skeleton = frozenset(normalize_tokens(phrase.replace("<*>", " ")))
                if skeleton:
                    self._knowledge.append((skeleton, concept))
        self.call_count = 0

    # ------------------------------------------------------------------
    def _best_match(self, tokens: set[str]) -> tuple[EventConcept | None, float]:
        best: EventConcept | None = None
        best_score = 0.0
        for skeleton, concept in self._knowledge:
            if not skeleton:
                continue
            overlap = len(tokens & skeleton) / len(skeleton)
            if overlap > best_score:
                best, best_score = concept, overlap
        return best, best_score

    def _fallback_rewrite(self, message: str) -> str:
        """Normalizing rewrite for messages outside the knowledge base."""
        return fallback_rewrite(message)

    def _hallucinate(self, correct: str) -> str:
        """Produce a wrong interpretation (the §IV-E2 internal threat)."""
        if self._rng.random() < 0.5 and len(CONCEPTS) > 1:
            wrong = CONCEPTS[int(self._rng.integers(len(CONCEPTS)))]
            if wrong.canonical != correct:
                return wrong.canonical
        # Fabricated/garbled variant: a real failure mode is confident nonsense.
        return "The subsystem completed a routine maintenance handshake successfully."

    # ------------------------------------------------------------------
    def complete(self, prompt: str) -> str:
        """Interpret the log message embedded in ``prompt``."""
        self.call_count += 1
        message = extract_log_from_prompt(prompt)
        tokens = set(normalize_tokens(message))
        concept, score = self._best_match(tokens)
        if concept is not None and score >= self.match_threshold:
            interpretation = concept.canonical
        else:
            interpretation = self._fallback_rewrite(message)
        if self.hallucination_rate > 0 and self._rng.random() < self.hallucination_rate:
            interpretation = self._hallucinate(interpretation)
        # Injected hallucination bursts corrupt the completion here, past
        # the matcher, the way a hosted model garbles output at the wire.
        return fault_point("llm.simulated.complete", interpretation)
