"""One provider spec grammar shared by every CLI entry point.

``repro fit``, ``serve``, ``replay`` and ``fuzz`` all accept the same
``--llm`` spec and resolve it here, so pointing the pipeline at a
different provider is one flag everywhere::

    --llm simulated
    --llm simulated:hallucination_rate=0.05
    --llm flaky:error_rate=0.1,latency=0.02
    --llm cached:path=artifacts/interpretations.json

Grammar: ``name[:key=value[,key=value...]]``.  Values coerce to bool
(``true``/``false``), int, float, then fall back to string, in that
order.  :func:`provider_from_spec` builds the bare provider;
:func:`resolve_provider` adds the CLI conveniences — the middleware
stack (see :func:`repro.llm.middleware.build_provider_stack`) and the
deprecated ``--llm-cache`` wrapping.
"""

from __future__ import annotations

from typing import Any, Callable

from .cache import CachedLLM
from .middleware import build_provider_stack
from .providers import FlakyLLM, LLMProvider
from .simulated import SimulatedLLM

__all__ = [
    "PROVIDER_BUILDERS", "parse_provider_spec", "provider_from_spec",
    "default_provider", "resolve_provider", "DEFAULT_SPEC",
]

DEFAULT_SPEC = "simulated"


def _coerce(raw: str) -> Any:
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def parse_provider_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``name[:key=value,...]`` into the name and coerced options."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty provider spec")
    name, _, raw_options = spec.partition(":")
    name = name.strip().lower()
    options: dict[str, Any] = {}
    if raw_options:
        for pair in raw_options.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed provider option {pair!r} in spec {spec!r} "
                    f"(expected key=value)")
            options[key] = _coerce(value.strip())
    return name, options


def _build_simulated(options: dict[str, Any], seed: int) -> LLMProvider:
    options.setdefault("seed", seed)
    return SimulatedLLM(**options)


def _build_flaky(options: dict[str, Any], seed: int) -> LLMProvider:
    options.setdefault("seed", seed)
    return FlakyLLM(**options)


def _build_cached(options: dict[str, Any], seed: int) -> LLMProvider:
    path = options.pop("path", None)
    if path is None:
        raise ValueError("cached provider requires a path "
                         "(e.g. --llm cached:path=cache.json)")
    inner_options = {k: options.pop(k) for k in ("hallucination_rate", "match_threshold")
                     if k in options}
    inner = _build_simulated(inner_options, seed)
    return CachedLLM(inner, path, **options)


PROVIDER_BUILDERS: dict[str, Callable[[dict[str, Any], int], LLMProvider]] = {
    "simulated": _build_simulated,
    "flaky": _build_flaky,
    "cached": _build_cached,
}


def provider_from_spec(spec: str, *, seed: int = 0) -> LLMProvider:
    """Build the bare provider named by ``spec`` (no middleware)."""
    name, options = parse_provider_spec(spec)
    builder = PROVIDER_BUILDERS.get(name)
    if builder is None:
        known = ", ".join(sorted(PROVIDER_BUILDERS))
        raise ValueError(f"unknown LLM provider {name!r} (known: {known})")
    try:
        return builder(options, seed)
    except TypeError as exc:
        raise ValueError(f"bad options for provider spec {spec!r}: {exc}") from exc


def default_provider(seed: int = 0) -> LLMProvider:
    """The provider the pipeline uses when none is configured."""
    return SimulatedLLM(seed=seed)


def resolve_provider(spec: str | None, *, seed: int = 0,
                     middleware: bool = True,
                     cache_path: str | None = None,
                     sleep: Callable[[float], None] | None = None,
                     ) -> tuple[LLMProvider, CachedLLM | None]:
    """Resolve CLI flags into a ready-to-use provider.

    Returns ``(provider, cache)`` where ``cache`` is the
    :class:`CachedLLM` created for the deprecated ``--llm-cache`` path
    (``None`` otherwise) so the caller can context-manage its save.
    ``middleware=False`` skips the traffic-control stack (the spec'd
    provider is used bare).
    """
    provider = provider_from_spec(spec or DEFAULT_SPEC, seed=seed)
    cache: CachedLLM | None = None
    if cache_path is not None:
        cache = CachedLLM(provider, cache_path, autosave=False)
        provider = cache
    if middleware:
        provider = build_provider_stack(provider, seed=seed, sleep=sleep)
    return provider, cache
