"""LEI: LLM-based event interpretation pipeline (§III-C, §VI-B2).

Drives the LLM over a template inventory (one representative message per
event), then runs the operator review loop the paper describes: generated
interpretations are checked for *format and length* errors — not semantic
correctness — and regenerated when they fail, bounding the impact of
hallucination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..parsing.template_store import TemplateStore
from .prompts import build_interpretation_prompt
from .providers import LLMProvider

__all__ = ["InterpretationReport", "EventInterpreter", "review_interpretation"]

_MAX_WORDS = 40
_MIN_WORDS = 2


def review_interpretation(text: str) -> list[str]:
    """Format/length review of one interpretation (§VI-B2).

    Returns a list of problems; empty means the interpretation passes.
    The review intentionally checks only mechanical properties — the paper
    notes operators review format and length, not semantics.
    """
    problems: list[str] = []
    stripped = text.strip()
    if not stripped:
        problems.append("empty interpretation")
        return problems
    words = stripped.split()
    if len(words) < _MIN_WORDS:
        problems.append(f"too short ({len(words)} words)")
    if len(words) > _MAX_WORDS:
        problems.append(f"too long ({len(words)} words)")
    if "<*>" in stripped:
        problems.append("contains unexpanded template wildcard")
    if "\n" in stripped:
        problems.append("contains line breaks")
    return problems


@dataclass
class InterpretationReport:
    """Bookkeeping for one LEI run over a template inventory."""

    interpretations: dict[int, str]
    llm_calls: int
    regenerated: int
    failed_review: list[int]

    def __len__(self) -> int:
        return len(self.interpretations)


class EventInterpreter:
    """Runs LEI over a parsed template inventory.

    Parameters
    ----------
    llm:
        Any :class:`repro.llm.providers.LLMProvider` (the structural
        contract: a callable ``complete``; ``complete_batch`` is used
        when present, so the middleware stack's batch-aware tiers —
        memory cache, coalescing — see whole inventories at once).
    max_regenerations:
        Review/regenerate attempts per template before keeping the best
        available output (mirrors the operator workflow in §VI-B2).
    """

    def __init__(self, llm: LLMProvider, max_regenerations: int = 2):
        if max_regenerations < 0:
            raise ValueError("max_regenerations must be non-negative")
        self.llm = llm
        self.max_regenerations = max_regenerations

    def _complete_batch(self, prompts: Sequence[str]) -> list[str]:
        """Batch first pass; per-prompt loop for bare-``complete`` clients."""
        batch = getattr(self.llm, "complete_batch", None)
        if callable(batch):
            return list(batch(prompts))
        return [self.llm.complete(prompt) for prompt in prompts]

    def interpret_event(self, system: str, representative: str) -> tuple[str, int]:
        """Interpret one event; returns (interpretation, regeneration count)."""
        prompt = build_interpretation_prompt(system, representative)
        text = self.llm.complete(prompt)
        return self._review_loop(prompt, text)

    def _review_loop(self, prompt: str, text: str) -> tuple[str, int]:
        """Operator review: regenerate while the output fails format checks."""
        regenerations = 0
        while review_interpretation(text) and regenerations < self.max_regenerations:
            text = self.llm.complete(prompt)
            regenerations += 1
        return text.strip(), regenerations

    def interpret_store(self, system: str, store: TemplateStore) -> InterpretationReport:
        """Interpret every template in ``store``.

        The first pass goes through ``complete_batch`` (one round trip
        for the whole inventory); only events whose output fails review
        re-enter the per-event regeneration loop.
        """
        inventory = store.inventory()
        event_ids = list(inventory)
        prompts = [build_interpretation_prompt(system, inventory[event_id][1])
                   for event_id in event_ids]
        first_pass = self._complete_batch(prompts)

        interpretations: dict[int, str] = {}
        calls = len(prompts)
        regenerated = 0
        failed: list[int] = []
        for event_id, prompt, text in zip(event_ids, prompts, first_pass):
            text, regen = self._review_loop(prompt, text)
            calls += regen
            regenerated += regen
            if review_interpretation(text):
                failed.append(event_id)
            interpretations[event_id] = text
        return InterpretationReport(
            interpretations=interpretations,
            llm_calls=calls,
            regenerated=regenerated,
            failed_review=failed,
        )
