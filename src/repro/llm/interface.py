"""LLM client protocol.

LogSynergy's LEI stage talks to an LLM through a narrow text-completion
interface; production deployments point this at a hosted model (the paper
uses ChatGPT-4o), while this reproduction ships :class:`SimulatedLLM`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["LLMClient"]


@runtime_checkable
class LLMClient(Protocol):
    """Anything that maps a prompt string to a completion string."""

    def complete(self, prompt: str) -> str:
        """Return the model's completion for ``prompt``."""
        ...
