"""Deprecated home of the LLM client contract.

The exported contract is now :class:`repro.llm.providers.LLMProvider`,
an ABC with ``complete()`` / ``complete_batch()``.  The old one-method
``LLMClient`` Protocol that lived here remains importable as a
deprecated alias for ``LLMProvider`` — ``isinstance`` checks keep
working because the ABC accepts anything with a callable ``complete``
structurally, exactly as the Protocol did.
"""

from __future__ import annotations

import warnings

__all__ = ["LLMClient"]


def __getattr__(name: str):
    if name == "LLMClient":
        warnings.warn(
            "repro.llm.LLMClient is deprecated; use repro.llm.LLMProvider "
            "(same structural contract, plus complete_batch).",
            DeprecationWarning,
            stacklevel=2,
        )
        from .providers import LLMProvider

        return LLMProvider
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
