"""Evaluation harness: metrics, leakage-free splits, experiment runner, tables."""

from .calibration import ThresholdChoice, calibrate_threshold, precision_floor_threshold
from .metrics import BinaryMetrics, ConfusionCounts, binary_metrics, confusion_counts
from .splits import TargetSplit, continuous_target_split, random_split, source_training_slice
from .experiment import CrossSystemExperiment, ExperimentResult, MethodResult
from .repeated import AggregateResult, repeat_experiment
from .reporting import MarkdownReport, ReportSection
from .tables import format_results_table, format_series, format_stats_table

__all__ = [
    "ThresholdChoice", "calibrate_threshold", "precision_floor_threshold",
    "BinaryMetrics", "ConfusionCounts", "binary_metrics", "confusion_counts",
    "TargetSplit", "continuous_target_split", "source_training_slice", "random_split",
    "CrossSystemExperiment", "ExperimentResult", "MethodResult",
    "AggregateResult", "repeat_experiment",
    "format_results_table", "format_series", "format_stats_table",
    "MarkdownReport", "ReportSection",
]
