"""Leakage-free data splits (§IV-A1).

Following Le & Zhang (ICSE '22), random train/test splits leak future
templates into training; the paper instead takes the *earliest* ``n``
sequences of the target system for training and tests on the remainder.
Source systems contribute their earliest ``n_s`` sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..logs.sequences import LogSequence

__all__ = ["TargetSplit", "continuous_target_split", "source_training_slice",
           "random_split"]


@dataclass(frozen=True)
class TargetSplit:
    """Target-system train/test partition."""

    train: list[LogSequence]
    test: list[LogSequence]

    @property
    def train_labels(self) -> np.ndarray:
        """Ground-truth labels of the training partition."""
        return np.array([s.label for s in self.train], dtype=np.int64)

    @property
    def test_labels(self) -> np.ndarray:
        """Ground-truth labels of the test partition."""
        return np.array([s.label for s in self.test], dtype=np.int64)


def continuous_target_split(sequences: list[LogSequence], n_train: int) -> TargetSplit:
    """The paper's continuous sampling: former portion trains, latter tests."""
    if n_train <= 0:
        raise ValueError(f"n_train must be positive, got {n_train}")
    if n_train >= len(sequences):
        raise ValueError(
            f"n_train={n_train} leaves no test data (only {len(sequences)} sequences)"
        )
    return TargetSplit(train=list(sequences[:n_train]), test=list(sequences[n_train:]))


def source_training_slice(sequences: list[LogSequence], n_source: int) -> list[LogSequence]:
    """Earliest ``n_source`` sequences of a source system (all of them if fewer)."""
    if n_source <= 0:
        raise ValueError(f"n_source must be positive, got {n_source}")
    return list(sequences[:n_source])


def random_split(sequences: list[LogSequence], n_train: int, seed: int = 0) -> TargetSplit:
    """Random split — provided only to reproduce the leakage comparison.

    The repository's experiments use :func:`continuous_target_split`; this
    exists so the data-leakage ablation can quantify how much random
    sampling inflates scores.
    """
    if n_train >= len(sequences):
        raise ValueError("n_train leaves no test data")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(sequences))
    train_index = set(order[:n_train].tolist())
    train = [s for i, s in enumerate(sequences) if i in train_index]
    test = [s for i, s in enumerate(sequences) if i not in train_index]
    return TargetSplit(train=train, test=test)
