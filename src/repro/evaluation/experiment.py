"""Cross-system experiment runner (the §IV protocol).

One experiment fixes a target system; the remaining systems in its group
act as sources.  Sources contribute their earliest ``n_source`` sequences;
the target contributes its earliest ``n_target`` sequences for training
and the rest for testing (continuous sampling, §IV-A1).  The runner
evaluates LogSynergy and any requested baselines on the shared test set
and returns Table IV/V-shaped rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..baselines.base import BaselineDetector
from ..baselines.registry import make_baseline
from ..config import LogSynergyConfig
from ..core.pipeline import LogSynergy
from ..logs.datasets import LogDataset, build_dataset
from ..logs.sequences import LogSequence
from .metrics import BinaryMetrics, binary_metrics
from .splits import continuous_target_split, source_training_slice

__all__ = ["MethodResult", "ExperimentResult", "CrossSystemExperiment"]


@dataclass(frozen=True)
class MethodResult:
    """One method's scores on one target system."""

    method: str
    target: str
    metrics: BinaryMetrics
    train_seconds: float
    predict_seconds: float

    def row(self) -> dict[str, float | str]:
        """Flat table row (method, target, P/R/F1 percentages)."""
        return {
            "method": self.method,
            "target": self.target,
            **{k: round(v, 2) for k, v in self.metrics.as_percentages().items()},
        }


@dataclass
class ExperimentResult:
    """All methods' scores for one target system."""

    target: str
    sources: tuple[str, ...]
    results: list[MethodResult] = field(default_factory=list)

    def by_method(self) -> dict[str, MethodResult]:
        """Results indexed by method name."""
        return {r.method: r for r in self.results}

    def f1_of(self, method: str) -> float:
        """F1 score of one method."""
        return self.by_method()[method].metrics.f1


class CrossSystemExperiment:
    """Builds data once per target and evaluates methods against it."""

    def __init__(self, target: str, sources: list[str], scale: float = 0.01,
                 n_source: int = 2000, n_target: int = 200, max_test: int | None = 2000,
                 seed: int = 0, datasets: dict[str, LogDataset] | None = None,
                 clock: Callable[[], float] | None = None):
        if target in sources:
            raise ValueError("target cannot be one of the sources")
        self._clock = clock or time.perf_counter
        self.target = target
        self.sources = list(sources)
        self.scale = scale
        self.n_source = n_source
        self.n_target = n_target
        self.max_test = max_test
        self.seed = seed
        self._datasets = datasets or {}
        self._prepared = False
        self.source_train: dict[str, list[LogSequence]] = {}
        self.target_train: list[LogSequence] = []
        self.target_test: list[LogSequence] = []

    # ------------------------------------------------------------------
    def _dataset(self, name: str, index: int) -> LogDataset:
        if name not in self._datasets:
            self._datasets[name] = build_dataset(name, scale=self.scale, seed=self.seed + index)
        return self._datasets[name]

    def prepare(self) -> "CrossSystemExperiment":
        """Generate datasets and cut the continuous splits."""
        if self._prepared:
            return self
        for index, name in enumerate(self.sources):
            dataset = self._dataset(name, index)
            self.source_train[name] = source_training_slice(dataset.sequences, self.n_source)
        target_dataset = self._dataset(self.target, len(self.sources))
        split = continuous_target_split(target_dataset.sequences, self.n_target)
        self.target_train = split.train
        self.target_test = split.test if self.max_test is None else split.test[: self.max_test]
        self._prepared = True
        return self

    @property
    def test_labels(self) -> np.ndarray:
        """Ground-truth labels of the test partition."""
        return np.array([s.label for s in self.target_test], dtype=np.int64)

    # ------------------------------------------------------------------
    def run_logsynergy(self, config: LogSynergyConfig | None = None,
                       method_name: str = "LogSynergy", **kwargs) -> MethodResult:
        """Train and evaluate LogSynergy (or an ablated variant via kwargs)."""
        self.prepare()
        config = config or LogSynergyConfig(seed=self.seed)
        model = LogSynergy(config, **kwargs)
        start = self._clock()
        model.fit(self.source_train, self.target, self.target_train)
        train_seconds = self._clock() - start
        start = self._clock()
        predictions = model.predict(self.target_test)
        predict_seconds = self._clock() - start
        return MethodResult(
            method=method_name,
            target=self.target,
            metrics=binary_metrics(self.test_labels, predictions),
            train_seconds=train_seconds,
            predict_seconds=predict_seconds,
        )

    def run_baseline(self, baseline: BaselineDetector | str, **kwargs) -> MethodResult:
        """Train and evaluate one baseline on the shared splits."""
        self.prepare()
        detector = (
            make_baseline(baseline, **kwargs) if isinstance(baseline, str) else baseline
        )
        start = self._clock()
        detector.fit(self.source_train, self.target, self.target_train)
        train_seconds = self._clock() - start
        start = self._clock()
        predictions = detector.predict(self.target_test)
        predict_seconds = self._clock() - start
        return MethodResult(
            method=detector.name,
            target=self.target,
            metrics=binary_metrics(self.test_labels, predictions),
            train_seconds=train_seconds,
            predict_seconds=predict_seconds,
        )

    def run_ensemble(self, ensemble, method_name: str | None = None) -> MethodResult:
        """Evaluate a :class:`repro.detectors.Ensemble` on the shared splits.

        The ensemble trains only on the target's own labeled windows
        (``fit`` warms its members and, in ``stacker`` mode, trains the
        combiner) — source systems contribute nothing, which is exactly
        the day-0 posture the detector portfolio exists for.  Test
        sequences are scored in split order so the members' rolling
        per-system state mirrors a live stream.
        """
        self.prepare()
        if method_name is None:
            members = "+".join(member.name for member in ensemble.members)
            method_name = f"Ensemble[{members}:{ensemble.mode}]"
        start = self._clock()
        ensemble.fit(
            self.target,
            [list(sequence.records) for sequence in self.target_train],
            [sequence.label for sequence in self.target_train],
        )
        train_seconds = self._clock() - start
        start = self._clock()
        predictions = ensemble.predict_sequences(self.target, self.target_test)
        predict_seconds = self._clock() - start
        return MethodResult(
            method=method_name,
            target=self.target,
            metrics=binary_metrics(self.test_labels, predictions),
            train_seconds=train_seconds,
            predict_seconds=predict_seconds,
        )

    def run(self, methods: list[str], config: LogSynergyConfig | None = None) -> ExperimentResult:
        """Evaluate a list of methods ("LogSynergy", baseline names, or
        ``detectors:<spec>`` for an unsupervised ensemble)."""
        result = ExperimentResult(target=self.target, sources=tuple(self.sources))
        for method in methods:
            if method == "LogSynergy":
                result.results.append(self.run_logsynergy(config))
            elif method.startswith("detectors:"):
                from ..detectors import ensemble_from_spec

                ensemble = ensemble_from_spec(method[len("detectors:"):],
                                              seed=self.seed)
                result.results.append(self.run_ensemble(ensemble))
            else:
                result.results.append(self.run_baseline(method))
        return result
