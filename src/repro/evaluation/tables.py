"""Table/figure formatting utilities for the benchmark harness.

Renders MethodResult collections as the paper's Table IV/V layout (one
P/R/F1 triple per target system) and simple series tables for the Fig 4-6
sweeps.
"""

from __future__ import annotations

from .experiment import ExperimentResult

__all__ = ["format_results_table", "format_series", "format_stats_table"]


def format_results_table(experiments: list[ExperimentResult], methods: list[str],
                         title: str = "") -> str:
    """Render Table IV/V: rows are methods, columns P/R/F1 per target."""
    targets = [e.target for e in experiments]
    by_target = {e.target: e.by_method() for e in experiments}
    header = f"{'Method':<14}" + "".join(
        f"{t:>24}" for t in targets
    )
    sub = f"{'':<14}" + "".join(f"{'P%':>8}{'R%':>8}{'F1%':>8}" for _ in targets)
    lines = []
    if title:
        lines.append(title)
    lines += [header, sub, "-" * len(sub)]
    for method in methods:
        cells = [f"{method:<14}"]
        for target in targets:
            result = by_target[target].get(method)
            if result is None:
                cells.append(f"{'-':>8}{'-':>8}{'-':>8}")
                continue
            pct = result.metrics.as_percentages()
            cells.append(f"{pct['P(%)']:>8.2f}{pct['R(%)']:>8.2f}{pct['F1(%)']:>8.2f}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_series(name: str, xs: list, ys_by_label: dict[str, list[float]],
                  x_label: str = "x", y_label: str = "F1(%)") -> str:
    """Render a Fig 4-style sweep: one row per x value, one column per curve."""
    labels = list(ys_by_label)
    header = f"{x_label:<12}" + "".join(f"{label:>14}" for label in labels)
    lines = [name, header, "-" * len(header)]
    for index, x in enumerate(xs):
        row = f"{str(x):<12}"
        for label in labels:
            value = ys_by_label[label][index]
            row += f"{value:>14.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_stats_table(rows: list[dict], title: str = "") -> str:
    """Render Table III-style dataset statistics."""
    if not rows:
        return title
    columns = list(rows[0])
    widths = {c: max(len(str(c)), max(len(str(r[c])) for r in rows)) + 2 for c in columns}
    lines = []
    if title:
        lines.append(title)
    lines.append("".join(f"{c:>{widths[c]}}" for c in columns))
    lines.append("-" * sum(widths.values()))
    for row in rows:
        lines.append("".join(f"{str(row[c]):>{widths[c]}}" for c in columns))
    return "\n".join(lines)
