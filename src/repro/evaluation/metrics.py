"""Evaluation metrics (§IV-A3): precision, recall, F1 on binary labels."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfusionCounts", "BinaryMetrics", "confusion_counts", "binary_metrics"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw confusion-matrix cells."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        """Total event count."""
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative


@dataclass(frozen=True)
class BinaryMetrics:
    """Precision/recall/F1 with the underlying counts attached."""

    precision: float
    recall: float
    f1: float
    counts: ConfusionCounts

    def as_percentages(self) -> dict[str, float]:
        """Metrics as percentage values keyed like the paper's tables."""
        return {
            "P(%)": 100.0 * self.precision,
            "R(%)": 100.0 * self.recall,
            "F1(%)": 100.0 * self.f1,
        }


def confusion_counts(y_true, y_pred) -> ConfusionCounts:
    """Count confusion cells; inputs are arrays of {0, 1}."""
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    invalid = set(np.unique(y_true)) | set(np.unique(y_pred))
    if invalid - {0, 1}:
        raise ValueError(f"labels must be binary, got values {sorted(invalid)}")
    return ConfusionCounts(
        true_positive=int(((y_true == 1) & (y_pred == 1)).sum()),
        false_positive=int(((y_true == 0) & (y_pred == 1)).sum()),
        true_negative=int(((y_true == 0) & (y_pred == 0)).sum()),
        false_negative=int(((y_true == 1) & (y_pred == 0)).sum()),
    )


def binary_metrics(y_true, y_pred) -> BinaryMetrics:
    """Precision, recall and F1 (zero when undefined, as in the paper's tables)."""
    counts = confusion_counts(y_true, y_pred)
    tp, fp, fn = counts.true_positive, counts.false_positive, counts.false_negative
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (2 * precision * recall / (precision + recall)) if (precision + recall) else 0.0
    return BinaryMetrics(precision=precision, recall=recall, f1=f1, counts=counts)
