"""Markdown experiment reports.

Renders experiment outcomes as a self-contained markdown document —
the format EXPERIMENTS.md uses — so downstream users can regenerate
their own paper-vs-measured records when they change the substrate or
scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .experiment import ExperimentResult

__all__ = ["ReportSection", "MarkdownReport"]


@dataclass
class ReportSection:
    """One experiment's section: commentary plus result blocks."""

    title: str
    commentary: str = ""
    tables: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Render this section as markdown."""
        parts = [f"## {self.title}"]
        if self.commentary:
            parts.append(self.commentary.strip())
        for table in self.tables:
            parts.append("```\n" + table.rstrip() + "\n```")
        return "\n\n".join(parts)


class MarkdownReport:
    """Assembles sections into a markdown document."""

    def __init__(self, title: str, preamble: str = ""):
        self.title = title
        self.preamble = preamble
        self.sections: list[ReportSection] = []

    def add_section(self, title: str, commentary: str = "",
                    tables: list[str] | None = None) -> ReportSection:
        """Append a section and return it for further editing."""
        section = ReportSection(title=title, commentary=commentary,
                                tables=list(tables or []))
        self.sections.append(section)
        return section

    def add_experiment(self, title: str, experiment: ExperimentResult,
                       commentary: str = "") -> ReportSection:
        """Append a section summarizing one :class:`ExperimentResult`."""
        lines = [f"{'method':<16}{'P%':>8}{'R%':>8}{'F1%':>8}{'train s':>10}"]
        for result in experiment.results:
            pct = result.metrics.as_percentages()
            lines.append(
                f"{result.method:<16}{pct['P(%)']:>8.2f}{pct['R(%)']:>8.2f}"
                f"{pct['F1(%)']:>8.2f}{result.train_seconds:>10.1f}"
            )
        return self.add_section(title, commentary, tables=["\n".join(lines)])

    def render(self) -> str:
        """Render the complete document."""
        parts = [f"# {self.title}"]
        if self.preamble:
            parts.append(self.preamble.strip())
        parts += [section.render() for section in self.sections]
        return "\n\n".join(parts) + "\n"

    def save(self, path: str) -> None:
        """Write the rendered document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
