"""Multi-seed repetition of experiments with mean/std aggregation.

Single runs at reduced scale are noisy; the benchmark figures report one
seed for speed, but downstream users should quote mean +/- std over seeds.
``repeat_experiment`` reruns a method over seeds (fresh data generation
and fresh initialization each time) and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import LogSynergyConfig
from .experiment import CrossSystemExperiment, MethodResult

__all__ = ["AggregateResult", "repeat_experiment"]


@dataclass(frozen=True)
class AggregateResult:
    """Mean/std of P, R, F1 over repeated runs."""

    method: str
    target: str
    runs: tuple[MethodResult, ...]

    def _values(self, pick: Callable[[MethodResult], float]) -> np.ndarray:
        return np.array([pick(r) for r in self.runs])

    @property
    def f1_mean(self) -> float:
        """Mean F1 over the repeated runs."""
        return float(self._values(lambda r: r.metrics.f1).mean())

    @property
    def f1_std(self) -> float:
        """Standard deviation of F1 over the repeated runs."""
        return float(self._values(lambda r: r.metrics.f1).std())

    @property
    def precision_mean(self) -> float:
        """Mean precision over the repeated runs."""
        return float(self._values(lambda r: r.metrics.precision).mean())

    @property
    def recall_mean(self) -> float:
        """Mean recall over the repeated runs."""
        return float(self._values(lambda r: r.metrics.recall).mean())

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method} on {self.target}: "
            f"F1 {100 * self.f1_mean:.1f} +/- {100 * self.f1_std:.1f} "
            f"(P {100 * self.precision_mean:.1f}, R {100 * self.recall_mean:.1f}, "
            f"n={len(self.runs)})"
        )


def repeat_experiment(target: str, sources: list[str], method: str = "LogSynergy",
                      seeds: list[int] | None = None, scale: float = 0.004,
                      n_source: int = 700, n_target: int = 100,
                      max_test: int = 800,
                      config: LogSynergyConfig | None = None,
                      baseline_kwargs: dict | None = None) -> AggregateResult:
    """Run one method across several seeds and aggregate.

    Each seed regenerates the datasets and reinitializes the model, so the
    spread covers both data and training variance.
    """
    seeds = seeds if seeds is not None else [0, 1, 2]
    if not seeds:
        raise ValueError("at least one seed is required")
    runs = []
    for seed in seeds:
        experiment = CrossSystemExperiment(
            target, sources, scale=scale, n_source=n_source,
            n_target=n_target, max_test=max_test, seed=seed,
        )
        if method == "LogSynergy":
            run_config = (config or LogSynergyConfig()).with_overrides(seed=seed)
            runs.append(experiment.run_logsynergy(run_config))
        else:
            kwargs = dict(baseline_kwargs or {})
            kwargs["seed"] = seed
            runs.append(experiment.run_baseline(method, **kwargs))
    return AggregateResult(method=method, target=target, runs=tuple(runs))
