"""Threshold calibration utilities.

The paper fixes the decision threshold at 0.5 for all classifier-style
methods (§IV-A3) but selects baseline hyperparameters "based on the
optimal F1-Score".  These helpers implement that selection: sweep the
threshold on a validation set and pick the F1-optimal point, plus a
precision-floor variant operators use in production (high precision keeps
alert fatigue down; §VI-C2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import binary_metrics

__all__ = ["ThresholdChoice", "calibrate_threshold", "precision_floor_threshold"]


@dataclass(frozen=True)
class ThresholdChoice:
    """A calibrated threshold with the validation metrics it achieved."""

    threshold: float
    f1: float
    precision: float
    recall: float


def _sweep(y_true: np.ndarray, scores: np.ndarray) -> list[ThresholdChoice]:
    candidates = np.unique(np.concatenate([[0.5], scores]))
    choices = []
    for threshold in candidates:
        predictions = (scores > threshold).astype(np.int64)
        metrics = binary_metrics(y_true, predictions)
        choices.append(ThresholdChoice(
            threshold=float(threshold), f1=metrics.f1,
            precision=metrics.precision, recall=metrics.recall,
        ))
    return choices


def calibrate_threshold(y_true, scores) -> ThresholdChoice:
    """Pick the F1-optimal threshold on validation scores.

    Ties break toward the *lower* threshold (higher recall), matching how
    the paper's baselines were tuned.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {scores.shape}")
    if len(y_true) == 0:
        raise ValueError("cannot calibrate on an empty validation set")
    choices = _sweep(y_true, scores)
    return max(choices, key=lambda c: (c.f1, -c.threshold))


def precision_floor_threshold(y_true, scores, min_precision: float = 0.9) -> ThresholdChoice:
    """Highest-recall threshold whose validation precision meets the floor.

    Falls back to the F1-optimal choice if no threshold reaches the floor.
    """
    if not 0.0 < min_precision <= 1.0:
        raise ValueError(f"min_precision must be in (0, 1], got {min_precision}")
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    choices = _sweep(y_true, scores)
    eligible = [c for c in choices if c.precision >= min_precision and c.recall > 0]
    if not eligible:
        return calibrate_threshold(y_true, scores)
    return max(eligible, key=lambda c: (c.recall, c.precision))
