"""Command-line interface.

Five subcommands cover the adoption workflow end to end::

    python -m repro generate --system bgl --lines 20000 --out bgl.jsonl
    python -m repro train --sources bgl.jsonl spirit.jsonl \
        --target tbird.jsonl --n-target 100 --model-dir pipeline/
    python -m repro detect --model-dir pipeline/ --logs new_tbird.jsonl
    python -m repro evaluate --target thunderbird --sources bgl spirit
    python -m repro stats metrics.jsonl

``generate`` writes synthetic datasets; ``train`` fits LogSynergy from
JSONL record files and persists the full pipeline; ``detect`` scores a log
file with a saved pipeline and prints reports; ``evaluate`` runs a
cross-system experiment on synthetic data and prints the metric table.

``train``/``detect``/``evaluate`` accept ``--metrics-out PATH``: the run
executes under a live ``repro.obs`` registry and exports every counter,
histogram and span to ``PATH`` as JSONL; ``stats`` pretty-prints such a
file.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

__all__ = ["main", "build_parser"]


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Install a live metrics registry when ``--metrics-out`` was given."""
    path = getattr(args, "metrics_out", None)
    if not path:
        yield None
        return
    from .obs import MetricsRegistry, use_registry, write_jsonl

    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry
    count = write_jsonl(registry, path)
    print(f"wrote {count} metric events to {path}")


def _resolve_llm(args: argparse.Namespace, seed: int):
    """Resolve the shared ``--llm`` spec / deprecated ``--llm-cache`` flags.

    Returns ``(provider, cache)``; ``provider`` is ``None`` when neither
    flag was given (call sites fall back to their historical default)
    and ``cache`` is the :class:`~repro.llm.cache.CachedLLM` to
    context-manage, when one was created.
    """
    spec = getattr(args, "llm", None)
    cache_path = getattr(args, "llm_cache", None)
    if cache_path:
        print("note: --llm-cache is deprecated; use --llm cached:path=... "
              "(kept working for now)", file=sys.stderr)
    if not spec and not cache_path:
        return None, None
    from .llm.factory import resolve_provider

    middleware = bool(spec) and not getattr(args, "no_llm_stack", False)
    try:
        return resolve_provider(spec, seed=seed, middleware=middleware,
                                cache_path=cache_path)
    except ValueError as exc:
        raise SystemExit(f"--llm: {exc}")


def _cmd_generate(args: argparse.Namespace) -> int:
    from .logs import build_dataset, save_records
    from .logs.generator import LogGenerator

    if args.lines is not None:
        records = LogGenerator(args.system, seed=args.seed).generate(args.lines)
    else:
        records = build_dataset(args.system, scale=args.scale, seed=args.seed).records
    count = save_records(records, args.out)
    anomalous = sum(r.is_anomalous for r in records)
    print(f"wrote {count} records ({anomalous} anomalous lines) to {args.out}")
    return 0


def _load_sequences(path: str, window: int, step: int):
    from .logs import load_records, sliding_windows

    records = load_records(path)
    if not records:
        raise SystemExit(f"{path}: no records")
    return records[0].system, sliding_windows(records, window=window, step=step)


class _KillAfter:
    """CLI-only crash switch: SIGKILL this process after epoch N ends.

    Composed *after* the checkpoint controller, so the epoch's
    checkpoint is durable before the process dies — the smoke test's
    kill/resume/byte-diff sequence depends on exactly that ordering.
    """

    def __init__(self, epochs: int):
        self.epochs = epochs

    def on_fit_start(self, trainer):
        return None

    def on_epoch_start(self, trainer, epoch):
        return None

    def on_step(self, trainer, step):
        return None

    def on_epoch_end(self, trainer, epoch, metrics):
        if epoch + 1 >= self.epochs:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        return None

    def on_fit_end(self, trainer, history):
        return None


def _training_controls(args: argparse.Namespace):
    """(controller, store, resume) from the shared checkpoint flags."""
    from .core import CheckpointEvery, CheckpointStore, StopAfter, compose

    if getattr(args, "resume", False) and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if getattr(args, "kill_after", None) is not None and not args.checkpoint_dir:
        raise SystemExit("--kill-after requires --checkpoint-dir")
    controllers = []
    store = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir)
        controllers.append(CheckpointEvery(store, epochs=args.checkpoint_every))
    if getattr(args, "stop_after", None) is not None:
        controllers.append(StopAfter(epochs=args.stop_after))
    if getattr(args, "kill_after", None) is not None:
        controllers.append(_KillAfter(args.kill_after))
    return compose(controllers), store, getattr(args, "resume", False)


def _cmd_train(args: argparse.Namespace) -> int:
    from .config import LogSynergyConfig
    from .core import LogSynergy
    from .evaluation import continuous_target_split, source_training_slice

    config = LogSynergyConfig(
        d_model=args.d_model, num_heads=args.num_heads, num_layers=args.num_layers,
        d_ff=args.d_ff, feature_dim=args.feature_dim, embedding_dim=args.embedding_dim,
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr,
        seed=args.seed,
    )
    sources = {}
    for path in args.sources:
        system, sequences = _load_sequences(path, args.window, args.step)
        sources[system] = source_training_slice(sequences, args.n_source)
        print(f"source {system}: {len(sources[system])} sequences from {path}")
    target_system, target_sequences = _load_sequences(args.target, args.window, args.step)
    split = continuous_target_split(target_sequences, args.n_target)
    print(f"target {target_system}: {len(split.train)} training sequences")

    with _observability(args), contextlib.ExitStack() as stack:
        # Inside the observability scope: the checkpoint store's
        # counters bind at construction and must reach --metrics-out.
        controller, store, resume = _training_controls(args)
        llm, cache = _resolve_llm(args, config.seed)
        if cache is not None:
            stack.enter_context(cache)
        model = LogSynergy(config, llm=llm)
        model.fit(sources, target_system, split.train, verbose=not args.quiet,
                  controller=controller, store=store, resume=resume)
        model.save_pipeline(args.model_dir)
        if cache is not None:
            print(f"LLM cache: {cache.hits} hits, {cache.misses} misses "
                  f"-> {args.llm_cache}")
    print(f"pipeline saved to {args.model_dir}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from .core import LogSynergy
    from .logs import load_records, sliding_windows

    records = load_records(args.logs)
    sequences = sliding_windows(records, window=args.window, step=args.step)
    if not sequences:
        raise SystemExit(f"{args.logs}: not enough records for one window")
    with _observability(args):
        # Load inside the scope so Drain/featurizer handles bind to the
        # live registry.
        model = LogSynergy.load_pipeline(args.model_dir)
        probabilities = model.predict_proba(sequences)
        flagged = int((probabilities > model.config.threshold).sum())
        print(f"{len(sequences)} windows scored; {flagged} above threshold "
              f"{model.config.threshold}")
        top = [sequences[int(i)] for i in np.argsort(-probabilities)[: args.top]]
        reports = model.detect_stream_batch(
            [s.messages for s in top],
            [[r.timestamp for r in s.records] for s in top],
        )
        for sequence, report in zip(top, reports):
            marker = "ANOMALY" if report.is_anomalous else "ok     "
            print(f"  [{marker}] score={report.score:.3f} window@{sequence.start_index}: "
                  f"{report.summary()}")
    return 0


def _cmd_onboard(args: argparse.Namespace) -> int:
    """Warm-start fine-tune on day-0 logs while a runtime keeps serving
    the old weights; promote only past the shadow-F1 gate."""
    from .core import CheckpointStore, LogSynergy, OnboardingSession
    from .logs import load_records, sliding_windows

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    records = load_records(args.logs)
    if not records:
        raise SystemExit(f"{args.logs}: no records")
    sequences = sliding_windows(records, window=args.window, step=args.step)
    if len(sequences) < 4:
        raise SystemExit(f"{args.logs}: only {len(sequences)} windows — "
                         "too few to split into fine-tune and holdout")
    system = records[0].system
    with _observability(args):
        pipeline = LogSynergy.load_pipeline(args.model_dir)
        runtime = None
        started = False
        if args.executor != "none":
            from .runtime import InferenceRuntime

            runtime = InferenceRuntime.from_model(
                pipeline, executor=args.executor,
                window=args.window, step=args.step)
            if args.executor in ("thread", "process"):
                runtime.start()
                started = True
        store = (CheckpointStore(args.checkpoint_dir)
                 if args.checkpoint_dir else None)
        session = OnboardingSession(
            pipeline, runtime=runtime, gate_f1=args.gate_f1,
            holdout_fraction=args.holdout_fraction)
        try:
            result = session.run(system, sequences, epochs=args.epochs,
                                 store=store, resume=args.resume)
        finally:
            if started:
                runtime.stop()
        verdict = "PROMOTED" if result.promoted else "REJECTED"
        print(f"onboard {system}: {verdict} — shadow F1 {result.shadow_f1:.3f} "
              f"vs gate {result.gate_f1:.2f} ({result.epochs} epochs, "
              f"{result.train_sequences} fine-tune / "
              f"{result.holdout_sequences} holdout windows)")
        if result.promoted:
            out_dir = args.out_dir or args.model_dir
            pipeline.save_pipeline(out_dir)
            print(f"promoted pipeline saved to {out_dir}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .config import LogSynergyConfig
    from .evaluation import CrossSystemExperiment, format_results_table

    config = LogSynergyConfig(
        d_model=args.d_model, num_heads=args.num_heads, num_layers=args.num_layers,
        d_ff=args.d_ff, feature_dim=args.feature_dim, embedding_dim=args.embedding_dim,
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr,
        seed=args.seed,
    )
    experiment = CrossSystemExperiment(
        args.target, args.sources, scale=args.scale, n_source=args.n_source,
        n_target=args.n_target, max_test=args.max_test, seed=args.seed,
    )
    methods = ["LogSynergy"] + (args.baselines or [])
    with _observability(args):
        outcome = experiment.run(methods, config=config)
    print(format_results_table([outcome], methods,
                               title=f"Cross-system evaluation (target={args.target})"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        apply_baseline, available_flow_passes, available_rules,
        format_violations, lint_project, load_baseline, render_json,
        render_sarif, write_baseline,
    )

    if args.list_rules:
        for name, description in available_rules():
            print(f"{name}: {description}")
        for name, description in available_flow_passes():
            print(f"{name}: {description}")
        return 0
    if args.write_baseline and not args.baseline:
        raise SystemExit("lint: --write-baseline requires --baseline PATH")
    select = args.select.split(",") if args.select else None
    with _observability(args):
        try:
            report = lint_project(args.paths, select=select)
        except (KeyError, OSError) as exc:
            raise SystemExit(f"lint: {exc}")
    violations = report.violations
    if args.write_baseline:
        count = write_baseline(violations, args.baseline)
        print(f"lint: wrote baseline with {count} accepted findings "
              f"to {args.baseline}")
        return 0
    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"lint: --baseline: {exc}")
        violations, suppressed = apply_baseline(violations, baseline)
    if args.format == "json":
        print(render_json(violations, report.files, report.flow_stats), end="")
    elif args.format == "sarif":
        print(render_sarif(violations, report.files, report.flow_stats), end="")
    elif violations:
        print(format_violations(violations))
    else:
        note = f", {suppressed} baselined" if suppressed else ""
        print(f"lint: clean ({', '.join(args.paths)}{note})")
    return 1 if violations else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .analysis import audit_spec

    with _observability(args):
        try:
            reports = audit_spec(args.models, seed=args.seed,
                                 gradcheck=args.gradcheck)
        except KeyError as exc:
            raise SystemExit(f"audit: {exc.args[0]}")
    for report in reports:
        print(report.format(verbose=args.verbose))
    failed = [r.model for r in reports if not r.ok]
    if failed:
        print(f"audit: FAIL ({', '.join(failed)})")
        return 1
    print(f"audit: all {len(reports)} model(s) clean")
    return 0


def _build_runtime(args: argparse.Namespace, *, threaded: bool, **extra):
    """Shared runtime construction for ``serve`` / ``replay``.

    With ``--model-dir`` the runtime scores through a saved LogSynergy
    pipeline; without it, a deterministic synthetic worker stands in so
    the runtime path can be exercised with no trained artifacts.  With
    ``--detectors`` the runtime fronts an unsupervised ensemble instead
    (day-0 capable: no trained model required); ``--model-dir`` then
    loads the pipeline the ensemble's ``model`` member wraps.

    ``--executor process`` swaps the shard threads (or the synchronous
    loop) for one worker process per shard: live workers cannot cross
    the process boundary, so this path builds a picklable
    :class:`~repro.runtime.ProcessWorkerSpec` — weight broadcast for a
    model, spec string for an ensemble — instead of a worker factory.
    """
    from .runtime import InferenceRuntime, SyntheticWorker, message_pattern

    process = getattr(args, "executor", None) == "process"
    common = dict(shards=args.shards, window=args.window, step=args.step,
                  max_batch=args.max_batch, **extra)
    if process:
        common["executor"] = "process"
    else:
        common["threaded"] = threaded
    model = None
    if args.model_dir:
        from .core import LogSynergy

        llm, _ = _resolve_llm(args, args.seed)
        model = LogSynergy.load_pipeline(args.model_dir, llm=llm)
    if getattr(args, "detectors", None):
        from .detectors import ensemble_from_spec

        try:
            # Parsed parent-side even in process mode, so a spec typo
            # fails fast here instead of as a worker-process crash.
            ensemble = ensemble_from_spec(args.detectors, pipeline=model,
                                          seed=args.seed)
        except ValueError as exc:
            raise SystemExit(f"--detectors: {exc}")
        if process:
            from .runtime import ProcessWorkerSpec

            spec = ProcessWorkerSpec.ensemble(
                args.detectors, seed=args.seed, pipeline=model,
                llm_spec=getattr(args, "llm", None))
            return InferenceRuntime(None, pattern_fn=message_pattern,
                                    process_spec=spec, **common)
        return InferenceRuntime.from_ensemble(ensemble, **common)
    if model is not None:
        if process:
            return InferenceRuntime.from_model(
                model, llm_spec=getattr(args, "llm", None), **common)
        return InferenceRuntime.from_model(model, **common)
    if process:
        from .runtime import ProcessWorkerSpec

        return InferenceRuntime(
            None, pattern_fn=message_pattern,
            process_spec=ProcessWorkerSpec.synthetic(threshold=args.threshold),
            **common,
        )
    return InferenceRuntime(
        lambda index: SyntheticWorker(threshold=args.threshold),
        pattern_fn=message_pattern, **common,
    )


def _print_runtime_summary(runtime, records: int, reports: int) -> None:
    stats = runtime.stats
    print(f"{records} records -> {stats.windows_seen} windows, "
          f"{reports} reports ({stats.degraded_windows} degraded windows, "
          f"model skip rate {stats.model_skip_rate:.2f})")
    shed = stats.records_rejected + stats.records_dropped
    if shed:
        print(f"backpressure shed {shed} records "
              f"({stats.records_rejected} rejected, "
              f"{stats.records_dropped} dropped-oldest)")


def _cmd_replay(args: argparse.Namespace) -> int:
    from .logs import load_records
    from .runtime import render_reports, report_sort_key

    records = load_records(args.logs)
    if not records:
        raise SystemExit(f"{args.logs}: no records")
    with _observability(args):
        # Deterministic by construction: synchronous engine, no latency
        # trigger — output is byte-identical for any --shards value.
        # --executor process keeps the same contract (seq-numbered
        # journals + window-id dedup), just with worker processes.
        runtime = _build_runtime(args, threaded=False, max_latency=None,
                                 backpressure="block")
        for record in records:
            runtime.submit(record)
        reports = runtime.drain()
        if runtime.executor == "process":
            # Reap worker processes and unlink the broadcast arena.
            runtime.stop()
        reports.sort(key=report_sort_key)
        rendered = render_reports(reports)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"wrote {len(reports)} reports to {args.out}")
        else:
            sys.stdout.write(rendered)
        _print_runtime_summary(runtime, len(records), len(reports))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .logs import load_records
    from .runtime import render_reports, report_sort_key

    records = load_records(args.logs)
    if not records:
        raise SystemExit(f"{args.logs}: no records")
    with _observability(args):
        if args.executor == "process" and args.backpressure != "block":
            raise SystemExit("--executor process supports only "
                             "--backpressure block (the journal-refeed "
                             "recovery path must never shed records)")
        runtime = _build_runtime(
            args, threaded=True, max_latency=args.max_latency,
            backpressure=args.backpressure, queue_capacity=args.queue_capacity,
        )
        clock = runtime.registry.clock
        runtime.start()
        started = clock()
        for record in records:
            runtime.submit(record)
        reports = runtime.stop()
        elapsed = clock() - started
        reports.sort(key=report_sort_key)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(render_reports(reports))
            print(f"wrote {len(reports)} reports to {args.out}")
        _print_runtime_summary(runtime, len(records), len(reports))
        rate = len(records) / elapsed if elapsed > 0 else float("inf")
        print(f"served {len(records)} records on {args.shards} "
              f"{args.executor} shard(s) "
              f"in {elapsed:.2f}s ({rate:,.0f} records/s)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .config import LogSynergyConfig
    from .core import LogSynergyModel, LogSynergyTrainer, TrainingBatch
    from .nn import OpProfiler
    from .nn.kernels import use_fused_kernels

    config = LogSynergyConfig(
        d_model=args.d_model, num_heads=args.num_heads, num_layers=args.num_layers,
        d_ff=args.d_ff, feature_dim=args.feature_dim, embedding_dim=args.embedding_dim,
        epochs=args.epochs, batch_size=args.batch_size, window=args.window,
        seed=args.seed,
    )
    rng = np.random.default_rng(config.seed)
    count = args.sequences
    data = TrainingBatch(
        sequences=rng.standard_normal(
            (count, config.window, config.embedding_dim)
        ).astype(np.float32),
        anomaly_labels=(rng.random(count) < 0.2).astype(np.float32),
        system_labels=rng.integers(0, 2, size=count),
        domain_labels=rng.integers(0, 2, size=count),
    )
    profiler = OpProfiler()
    with _observability(args) as registry:
        model = LogSynergyModel(config, num_systems=2)
        trainer = LogSynergyTrainer(model, config)
        with use_fused_kernels(not args.unfused):
            trainer.fit(data, profiler=profiler)
        if registry is not None:
            profiler.publish(registry)
    mode = "seed (unfused)" if args.unfused else "fused"
    print(f"profiled {count} sequences x {config.epochs} epoch(s) with {mode} kernels")
    print(profiler.table(limit=args.top))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import (BREAKABLE_RECOVERIES, measure_fault_point_overhead,
                          run_episodes)

    with _observability(args):
        try:
            report = run_episodes(
                args.episodes, args.seed, suite=args.suite,
                executor=args.executor,
                broken=tuple(args.break_paths or ()),
                provider_spec=args.llm,
            )
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"fuzz: {exc}")
    rendered = report.render()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote fuzz report to {args.out}")
    sys.stdout.write(rendered)

    code = 0 if report.ok else 1
    if args.bench_overhead:
        overhead = measure_fault_point_overhead()
        print(overhead.render())
        if overhead.overhead_ns > args.overhead_limit_ns:
            print(f"fuzz: FAIL unarmed fault_point overhead "
                  f"{overhead.overhead_ns:.1f} ns/call exceeds "
                  f"--overhead-limit-ns {args.overhead_limit_ns:.0f}")
            code = 1
    if not report.ok and args.break_paths:
        # Self-test mode: violations under --break prove the harness can
        # see the defects it exists for.
        print(f"fuzz: {len(report.violations)} violation(s) with broken "
              f"recovery path(s) {', '.join(args.break_paths)} "
              f"(breakable: {', '.join(BREAKABLE_RECOVERIES)})")
    return code


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import read_jsonl, summarize_events

    try:
        events = read_jsonl(args.metrics)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{args.metrics}: {exc}")
    print(summarize_events(events))
    return 0


def _add_model_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--num-heads", type=int, default=4)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--d-ff", type=int, default=64)
    parser.add_argument("--feature-dim", type=int, default=16)
    parser.add_argument("--embedding-dim", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=5e-4)


def _add_window_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=int, default=10)
    parser.add_argument("--step", type=int, default=5)


def _add_metrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="export repro.obs metrics/spans to this JSONL file")


def _add_checkpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write resumable training checkpoints here")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        metavar="E", help="checkpoint every E epochs")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest verifiable checkpoint "
                             "in --checkpoint-dir")


def _add_llm_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--llm", default=None, metavar="SPEC",
                        help="LLM provider spec: name[:key=value,...] — e.g. "
                             "simulated, flaky:error_rate=0.1, "
                             "cached:path=cache.json")
    parser.add_argument("--no-llm-stack", action="store_true",
                        help="use the spec'd provider bare, without the "
                             "traffic-control middleware stack")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="LogSynergy reproduction command line"
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--system", required=True,
                          help="bgl|spirit|thunderbird|system_a|system_b|system_c")
    generate.add_argument("--lines", type=int, default=None,
                          help="exact line count (overrides --scale)")
    generate.add_argument("--scale", type=float, default=0.01,
                          help="fraction of the Table III line count")
    generate.add_argument("--out", required=True, help="output JSONL path")
    generate.set_defaults(func=_cmd_generate)

    train = commands.add_parser("train", help="train LogSynergy from JSONL files")
    train.add_argument("--sources", nargs="+", required=True,
                       help="JSONL files of mature-system records")
    train.add_argument("--target", required=True, help="JSONL file of the new system")
    train.add_argument("--n-source", type=int, default=1000)
    train.add_argument("--n-target", type=int, default=100)
    train.add_argument("--model-dir", required=True)
    train.add_argument("--quiet", action="store_true")
    train.add_argument("--llm-cache", default=None, metavar="PATH",
                       help="deprecated: persist LLM interpretations to this "
                            "JSON cache file (use --llm cached:path=...)")
    _add_llm_flags(train)
    _add_model_flags(train)
    _add_window_flags(train)
    _add_metrics_flag(train)
    _add_checkpoint_flags(train)
    train.add_argument("--stop-after", type=int, default=None, metavar="E",
                       help="pause (resumably) after E completed epochs")
    train.add_argument("--kill-after", type=int, default=None, metavar="E",
                       help="SIGKILL this process after epoch E's checkpoint "
                            "(crash-equivalence testing; needs "
                            "--checkpoint-dir)")
    train.set_defaults(func=_cmd_train)

    onboard = commands.add_parser(
        "onboard", help="fine-tune a saved pipeline on a new system's "
                        "day-0 logs; promote past a shadow-F1 gate")
    onboard.add_argument("--model-dir", required=True,
                         help="saved pipeline to warm-start from")
    onboard.add_argument("--logs", required=True,
                         help="day-0 JSONL records of the new system")
    onboard.add_argument("--epochs", type=int, default=None,
                         help="fine-tune epochs (default: config.epochs)")
    onboard.add_argument("--gate-f1", type=float, default=0.6,
                         help="minimum shadow F1 for promotion")
    onboard.add_argument("--holdout-fraction", type=float, default=0.5,
                         help="tail fraction held out for shadow evaluation")
    onboard.add_argument("--executor", default="sync",
                         choices=["none", "sync", "thread", "process"],
                         help="runtime serving the old weights during the "
                              "fine-tune (promotion hot-swaps it); 'none' "
                              "skips the runtime")
    onboard.add_argument("--out-dir", default=None,
                         help="where to save a promoted pipeline "
                              "(default: --model-dir)")
    _add_window_flags(onboard)
    _add_metrics_flag(onboard)
    _add_checkpoint_flags(onboard)
    onboard.set_defaults(func=_cmd_onboard)

    detect = commands.add_parser("detect", help="score a log file with a saved pipeline")
    detect.add_argument("--model-dir", required=True)
    detect.add_argument("--logs", required=True, help="JSONL file to score")
    detect.add_argument("--top", type=int, default=5, help="windows to report")
    detect.add_argument("--seed", type=int, default=0)
    _add_window_flags(detect)
    _add_metrics_flag(detect)
    detect.set_defaults(func=_cmd_detect)

    evaluate = commands.add_parser("evaluate", help="run a synthetic cross-system experiment")
    evaluate.add_argument("--target", required=True)
    evaluate.add_argument("--sources", nargs="+", required=True)
    evaluate.add_argument("--baselines", nargs="*", default=[],
                          help="baseline method names to include")
    evaluate.add_argument("--scale", type=float, default=0.006)
    evaluate.add_argument("--n-source", type=int, default=1000)
    evaluate.add_argument("--n-target", type=int, default=100)
    evaluate.add_argument("--max-test", type=int, default=800)
    _add_model_flags(evaluate)
    _add_metrics_flag(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    lint = commands.add_parser("lint", help="lint source trees against repo invariants")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule names to run; names with a "
                           "'/' select interprocedural passes and accept "
                           "wildcards, e.g. flow/* (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and flow passes, then exit")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "sarif"),
                      help="output format (default: text)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file of accepted findings to subtract")
    lint.add_argument("--write-baseline", action="store_true",
                      help="snapshot current findings into --baseline and exit")
    _add_metrics_flag(lint)
    lint.set_defaults(func=_cmd_lint)

    audit = commands.add_parser(
        "audit", help="audit model autograd wiring (shapes, dead params, broken graphs)"
    )
    audit.add_argument("models", nargs="+",
                       help="'logsynergy', a baseline name (e.g. DeepLog), or 'all'")
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--gradcheck", action="store_true",
                       help="also verify small parameters against finite differences")
    audit.add_argument("--verbose", action="store_true",
                       help="include INFO findings in the report")
    _add_metrics_flag(audit)
    audit.set_defaults(func=_cmd_audit)

    def _add_runtime_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--logs", required=True, help="JSONL file to stream")
        sub.add_argument("--model-dir", default=None,
                         help="saved pipeline directory (omit for the "
                              "deterministic synthetic worker)")
        sub.add_argument("--detectors", default=None, metavar="SPEC",
                         help="run an unsupervised detector ensemble instead "
                              "of a single worker, e.g. ewma,lof:vote or "
                              "ewma,lof,rules,model:max (the model member "
                              "loads --model-dir when given)")
        sub.add_argument("--shards", type=int, default=1)
        sub.add_argument("--max-batch", type=int, default=16)
        sub.add_argument("--threshold", type=float, default=0.5,
                         help="anomaly threshold for the synthetic worker")
        sub.add_argument("--out", default=None, metavar="PATH",
                         help="write canonical report JSONL to this file")
        sub.add_argument("--seed", type=int, default=0)
        _add_llm_flags(sub)
        _add_window_flags(sub)
        _add_metrics_flag(sub)

    replay = commands.add_parser(
        "replay", help="deterministically replay a log file through the "
                       "sharded runtime (byte-identical for any --shards "
                       "and either --executor)"
    )
    _add_runtime_flags(replay)
    replay.add_argument("--executor", default="sync",
                        choices=["sync", "process"],
                        help="sync: single-threaded deterministic engine; "
                             "process: one worker process per shard with a "
                             "shared-memory weight broadcast (same "
                             "byte-identical output)")
    replay.set_defaults(func=_cmd_replay)

    serve = commands.add_parser(
        "serve", help="stream a log file through the sharded runtime "
                      "(threaded or worker-process shards)"
    )
    _add_runtime_flags(serve)
    serve.add_argument("--executor", default="thread",
                       choices=["thread", "process"],
                       help="thread: one shard thread per shard (GIL-bound); "
                            "process: one worker process per shard, "
                            "overlapping CPU-bound scoring")
    serve.add_argument("--max-latency", type=float, default=0.05,
                       help="micro-batch latency budget in seconds")
    serve.add_argument("--backpressure", default="block",
                       choices=["block", "reject", "drop-oldest"])
    serve.add_argument("--queue-capacity", type=int, default=10_000)
    serve.set_defaults(func=_cmd_serve)

    profile = commands.add_parser(
        "profile", help="rank autograd ops by wall time over a small synthetic fit"
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--sequences", type=int, default=192,
                         help="synthetic training sequences to fit on")
    profile.add_argument("--window", type=int, default=8)
    profile.add_argument("--epochs", type=int, default=1)
    profile.add_argument("--batch-size", type=int, default=32)
    profile.add_argument("--d-model", type=int, default=32)
    profile.add_argument("--num-heads", type=int, default=4)
    profile.add_argument("--num-layers", type=int, default=1)
    profile.add_argument("--d-ff", type=int, default=64)
    profile.add_argument("--feature-dim", type=int, default=16)
    profile.add_argument("--embedding-dim", type=int, default=32)
    profile.add_argument("--top", type=int, default=15,
                         help="rows to show in the hot-op table")
    profile.add_argument("--unfused", action="store_true",
                         help="profile the seed composition instead of the fused kernels")
    _add_metrics_flag(profile)
    profile.set_defaults(func=_cmd_profile)

    fuzz = commands.add_parser(
        "fuzz", help="run seeded fault-injection fuzz episodes against an "
                     "invariant suite (exit 1 on any violation)"
    )
    fuzz.add_argument("--episodes", type=int, default=5,
                      help="seeded episodes to run")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed; episode seeds derive deterministically")
    fuzz.add_argument("--suite", default="all",
                      choices=["all", "replay", "llm", "trainer", "fuzzer",
                               "detectors", "process", "onboard"],
                      help="invariant suite to check each episode against")
    fuzz.add_argument("--executor", default="sync",
                      choices=["sync", "process"],
                      help="runtime executor the replay invariants run "
                           "against (fault-equivalence checks pin sync)")
    fuzz.add_argument("--out", default=None, metavar="PATH",
                      help="write the (byte-deterministic) report here too")
    fuzz.add_argument("--break", dest="break_paths", action="append",
                      default=None, metavar="RECOVERY",
                      choices=["retry", "quarantine", "review", "nan-guard",
                               "breaker"],
                      help="disable a recovery path (repeatable); violations "
                           "then PROVE the harness detects the defect")
    _add_llm_flags(fuzz)
    fuzz.add_argument("--bench-overhead", action="store_true",
                      help="also benchmark the unarmed fault_point hook and "
                           "fail when it exceeds --overhead-limit-ns")
    fuzz.add_argument("--overhead-limit-ns", type=float, default=500.0,
                      help="max tolerated unarmed-hook overhead per call")
    _add_metrics_flag(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    stats = commands.add_parser("stats", help="summarize a --metrics-out JSONL file")
    stats.add_argument("metrics", help="JSONL file written by --metrics-out")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
