"""Command-line interface.

Four subcommands cover the adoption workflow end to end::

    python -m repro generate --system bgl --lines 20000 --out bgl.jsonl
    python -m repro train --sources bgl.jsonl spirit.jsonl \
        --target tbird.jsonl --n-target 100 --model-dir pipeline/
    python -m repro detect --model-dir pipeline/ --logs new_tbird.jsonl
    python -m repro evaluate --target thunderbird --sources bgl spirit

``generate`` writes synthetic datasets; ``train`` fits LogSynergy from
JSONL record files and persists the full pipeline; ``detect`` scores a log
file with a saved pipeline and prints reports; ``evaluate`` runs a
cross-system experiment on synthetic data and prints the metric table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_generate(args: argparse.Namespace) -> int:
    from .logs import build_dataset, save_records
    from .logs.generator import LogGenerator

    if args.lines is not None:
        records = LogGenerator(args.system, seed=args.seed).generate(args.lines)
    else:
        records = build_dataset(args.system, scale=args.scale, seed=args.seed).records
    count = save_records(records, args.out)
    anomalous = sum(r.is_anomalous for r in records)
    print(f"wrote {count} records ({anomalous} anomalous lines) to {args.out}")
    return 0


def _load_sequences(path: str, window: int, step: int):
    from .logs import load_records, sliding_windows

    records = load_records(path)
    if not records:
        raise SystemExit(f"{path}: no records")
    return records[0].system, sliding_windows(records, window=window, step=step)


def _cmd_train(args: argparse.Namespace) -> int:
    from .config import LogSynergyConfig
    from .core import LogSynergy
    from .evaluation import continuous_target_split, source_training_slice

    config = LogSynergyConfig(
        d_model=args.d_model, num_heads=args.num_heads, num_layers=args.num_layers,
        d_ff=args.d_ff, feature_dim=args.feature_dim, embedding_dim=args.embedding_dim,
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr,
        seed=args.seed,
    )
    sources = {}
    for path in args.sources:
        system, sequences = _load_sequences(path, args.window, args.step)
        sources[system] = source_training_slice(sequences, args.n_source)
        print(f"source {system}: {len(sources[system])} sequences from {path}")
    target_system, target_sequences = _load_sequences(args.target, args.window, args.step)
    split = continuous_target_split(target_sequences, args.n_target)
    print(f"target {target_system}: {len(split.train)} training sequences")

    model = LogSynergy(config)
    model.fit(sources, target_system, split.train, verbose=not args.quiet)
    model.save_pipeline(args.model_dir)
    print(f"pipeline saved to {args.model_dir}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from .core import LogSynergy
    from .logs import load_records, sliding_windows

    model = LogSynergy.load_pipeline(args.model_dir)
    records = load_records(args.logs)
    sequences = sliding_windows(records, window=args.window, step=args.step)
    if not sequences:
        raise SystemExit(f"{args.logs}: not enough records for one window")
    probabilities = model.predict_proba(sequences)
    flagged = int((probabilities > model.config.threshold).sum())
    print(f"{len(sequences)} windows scored; {flagged} above threshold "
          f"{model.config.threshold}")
    for index in np.argsort(-probabilities)[: args.top]:
        sequence = sequences[int(index)]
        report = model.detect_stream(
            sequence.messages, timestamps=[r.timestamp for r in sequence.records]
        )
        marker = "ANOMALY" if report.is_anomalous else "ok     "
        print(f"  [{marker}] score={report.score:.3f} window@{sequence.start_index}: "
              f"{report.summary()}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .config import LogSynergyConfig
    from .evaluation import CrossSystemExperiment, format_results_table

    config = LogSynergyConfig(
        d_model=args.d_model, num_heads=args.num_heads, num_layers=args.num_layers,
        d_ff=args.d_ff, feature_dim=args.feature_dim, embedding_dim=args.embedding_dim,
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr,
        seed=args.seed,
    )
    experiment = CrossSystemExperiment(
        args.target, args.sources, scale=args.scale, n_source=args.n_source,
        n_target=args.n_target, max_test=args.max_test, seed=args.seed,
    )
    methods = ["LogSynergy"] + (args.baselines or [])
    outcome = experiment.run(methods, config=config)
    print(format_results_table([outcome], methods,
                               title=f"Cross-system evaluation (target={args.target})"))
    return 0


def _add_model_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--num-heads", type=int, default=4)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--d-ff", type=int, default=64)
    parser.add_argument("--feature-dim", type=int, default=16)
    parser.add_argument("--embedding-dim", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=5e-4)


def _add_window_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=int, default=10)
    parser.add_argument("--step", type=int, default=5)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LogSynergy reproduction command line"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--system", required=True,
                          help="bgl|spirit|thunderbird|system_a|system_b|system_c")
    generate.add_argument("--lines", type=int, default=None,
                          help="exact line count (overrides --scale)")
    generate.add_argument("--scale", type=float, default=0.01,
                          help="fraction of the Table III line count")
    generate.add_argument("--out", required=True, help="output JSONL path")
    generate.set_defaults(func=_cmd_generate)

    train = commands.add_parser("train", help="train LogSynergy from JSONL files")
    train.add_argument("--sources", nargs="+", required=True,
                       help="JSONL files of mature-system records")
    train.add_argument("--target", required=True, help="JSONL file of the new system")
    train.add_argument("--n-source", type=int, default=1000)
    train.add_argument("--n-target", type=int, default=100)
    train.add_argument("--model-dir", required=True)
    train.add_argument("--quiet", action="store_true")
    _add_model_flags(train)
    _add_window_flags(train)
    train.set_defaults(func=_cmd_train)

    detect = commands.add_parser("detect", help="score a log file with a saved pipeline")
    detect.add_argument("--model-dir", required=True)
    detect.add_argument("--logs", required=True, help="JSONL file to score")
    detect.add_argument("--top", type=int, default=5, help="windows to report")
    detect.add_argument("--seed", type=int, default=0)
    _add_window_flags(detect)
    detect.set_defaults(func=_cmd_detect)

    evaluate = commands.add_parser("evaluate", help="run a synthetic cross-system experiment")
    evaluate.add_argument("--target", required=True)
    evaluate.add_argument("--sources", nargs="+", required=True)
    evaluate.add_argument("--baselines", nargs="*", default=[],
                          help="baseline method names to include")
    evaluate.add_argument("--scale", type=float, default=0.006)
    evaluate.add_argument("--n-source", type=int, default=1000)
    evaluate.add_argument("--n-target", type=int, default=100)
    evaluate.add_argument("--max-test", type=int, default=800)
    _add_model_flags(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
