"""Inference workers: the units a shard's supervisor drives.

A worker turns one micro-batch of :class:`~repro.runtime.scheduler.PendingWindow`
into one :class:`~repro.core.report.AnomalyReport` per window, in order.
Three implementations:

* :class:`ModelWorker` — the production path over a fitted
  :class:`~repro.core.pipeline.LogSynergy` (``detect_stream_batch``).
  An optional shared lock serializes calls when shards run threaded,
  because the featurizer's Drain store mutates on novel templates.
* :class:`SyntheticWorker` — deterministic content-hash scoring with an
  injectable per-batch cost, for tests and the runtime benchmark (the
  cost stands in for LLM/accelerator inference latency, which LogLLM and
  LogGPT identify as the production bottleneck).
* :class:`FlakyWorker` — fault injection: raises
  :class:`WorkerError` for a scripted number of calls, then delegates.
"""

from __future__ import annotations

import threading
import zlib
from typing import Callable, Protocol

from ..core.report import AnomalyReport, build_report
from ..testing.faultpoints import DROPPED, fault_point
from .scheduler import PendingWindow

__all__ = [
    "WorkerError", "InferenceWorker", "ModelWorker", "SyntheticWorker",
    "EnsembleWorker", "FlakyWorker", "message_pattern",
]


class WorkerError(RuntimeError):
    """A worker failed to score a batch (retryable by the supervisor)."""


class InferenceWorker(Protocol):
    """One report per pending window, in batch order."""

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        ...  # pragma: no cover - protocol


def message_pattern(window: list) -> tuple[int, ...]:
    """Featurizer-free window pattern: distinct CRC32 message buckets.

    Mirrors the event-id-set pattern the online service computes from the
    model's featurizer, for runtimes driven by a :class:`SyntheticWorker`.
    """
    return tuple(sorted({
        zlib.crc32(entry.message.encode("utf-8")) % 4096 for entry in window
    }))


class ModelWorker:
    """Scores batches through LogSynergy's batch-first detection path."""

    def __init__(self, model, lock: threading.Lock | None = None):
        if model.model is None:
            raise ValueError("ModelWorker requires a fitted LogSynergy model")
        self.model = model
        # Shared across shards in threaded mode: detect_stream_batch may
        # ingest novel templates into the Drain store, which is not
        # thread-safe.  Synchronous engines pass None.
        self._lock = lock

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        fault_point("runtime.worker.score")
        messages = [[entry.message for entry in p.window] for p in batch]
        timestamps = [[entry.timestamp for entry in p.window] for p in batch]
        if self._lock is None:
            reports = self.model.detect_stream_batch(messages, timestamps)
        else:
            with self._lock:
                reports = self.model.detect_stream_batch(messages, timestamps)
        reports = fault_point("runtime.worker.result", reports)
        # A dropped result degrades the batch (the supervisor treats a
        # missing result like an exhausted retry budget).
        return None if reports is DROPPED else reports


class EnsembleWorker:
    """Scores batches through a :class:`repro.detectors.Ensemble`.

    The ensemble keeps rolling per-system state (EWMA baselines, LOF
    reference buffers), so windows of one system must reach it in
    stream order — the engine's deterministic pump already guarantees
    that for every shard count, and batches are per-system lanes.  An
    optional shared lock serializes calls when shards run threaded,
    because that per-system state is a plain dict.
    """

    def __init__(self, ensemble, lock: threading.Lock | None = None):
        self.ensemble = ensemble
        self._lock = lock

    def _score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        reports = []
        for pending in batch:
            score = self.ensemble.score_window(pending.system, pending.window)
            reports.append(build_report(
                system=pending.system,
                score=score,
                threshold=self.ensemble.threshold,
                messages=[entry.message for entry in pending.window],
                interpretations=[entry.message for entry in pending.window],
                timestamps=[entry.timestamp for entry in pending.window],
            ))
        return reports

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        fault_point("runtime.worker.score")
        if self._lock is None:
            reports = self._score_batch(batch)
        else:
            with self._lock:
                reports = self._score_batch(batch)
        reports = fault_point("runtime.worker.result", reports)
        return None if reports is DROPPED else reports


class SyntheticWorker:
    """Deterministic scorer with a simulated per-batch inference cost.

    ``cost`` is called once per batch with the batch size; inject
    ``lambda n: time.sleep(...)`` to model fixed inference latency, or
    leave ``None`` for free scoring in unit tests.  Scores are a pure
    function of window content, so results are reproducible and
    shard-count independent.
    """

    def __init__(self, threshold: float = 0.5,
                 cost: Callable[[int], None] | None = None):
        self.threshold = threshold
        self.cost = cost
        self.batches_scored = 0

    def _score(self, window: list) -> float:
        digest = zlib.crc32(
            "\n".join(entry.message for entry in window).encode("utf-8")
        )
        return (digest % 1000) / 999.0

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        fault_point("runtime.worker.score")
        if self.cost is not None:
            self.cost(len(batch))
        self.batches_scored += 1
        reports = []
        for pending in batch:
            reports.append(build_report(
                system=pending.system,
                score=self._score(pending.window),
                threshold=self.threshold,
                messages=[entry.message for entry in pending.window],
                interpretations=[entry.message for entry in pending.window],
                timestamps=[entry.timestamp for entry in pending.window],
            ))
        reports = fault_point("runtime.worker.result", reports)
        return None if reports is DROPPED else reports


class FlakyWorker:
    """Fault injection wrapper: fail the next N calls, then delegate."""

    def __init__(self, inner: InferenceWorker, failures: int = 0):
        self.inner = inner
        self.failures_remaining = failures
        self.calls = 0

    def fail_next(self, count: int) -> None:
        """Arm ``count`` consecutive injected failures."""
        self.failures_remaining = count

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        self.calls += 1
        if self.failures_remaining > 0:
            self.failures_remaining -= 1
            raise WorkerError("injected worker fault")
        return self.inner.score_batch(batch)
