"""Inference workers: the units a shard's supervisor drives.

A worker turns one micro-batch of :class:`~repro.runtime.scheduler.PendingWindow`
into one :class:`~repro.core.report.AnomalyReport` per window, in order.
Three implementations:

* :class:`ModelWorker` — the production path over a fitted
  :class:`~repro.core.pipeline.LogSynergy` (``detect_stream_batch``).
  An optional shared lock serializes calls when shards run threaded,
  because the featurizer's Drain store mutates on novel templates.
* :class:`SyntheticWorker` — deterministic content-hash scoring with an
  injectable per-batch cost, for tests and the runtime benchmark (the
  cost stands in for LLM/accelerator inference latency, which LogLLM and
  LogGPT identify as the production bottleneck).
* :class:`FlakyWorker` — fault injection: raises
  :class:`WorkerError` for a scripted number of calls, then delegates.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Callable, Protocol

from ..core.report import AnomalyReport, build_report
from ..testing.faultpoints import DROPPED, fault_point
from .scheduler import PendingWindow

__all__ = [
    "WorkerError", "InferenceWorker", "ModelWorker", "SyntheticWorker",
    "EnsembleWorker", "FlakyWorker", "message_pattern",
    "resolve_cost", "build_worker_from_spec",
]


class WorkerError(RuntimeError):
    """A worker failed to score a batch (retryable by the supervisor)."""


class InferenceWorker(Protocol):
    """One report per pending window, in batch order."""

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        ...  # pragma: no cover - protocol


def message_pattern(window: list) -> tuple[int, ...]:
    """Featurizer-free window pattern: distinct CRC32 message buckets.

    Mirrors the event-id-set pattern the online service computes from the
    model's featurizer, for runtimes driven by a :class:`SyntheticWorker`.
    """
    return tuple(sorted({
        zlib.crc32(entry.message.encode("utf-8")) % 4096 for entry in window
    }))


class ModelWorker:
    """Scores batches through LogSynergy's batch-first detection path."""

    def __init__(self, model, lock: threading.Lock | None = None):
        if model.model is None:
            raise ValueError("ModelWorker requires a fitted LogSynergy model")
        self.model = model
        # Shared across shards in threaded mode: detect_stream_batch may
        # ingest novel templates into the Drain store, which is not
        # thread-safe.  Synchronous engines pass None.
        self._lock = lock

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        fault_point("runtime.worker.score")
        messages = [[entry.message for entry in p.window] for p in batch]
        timestamps = [[entry.timestamp for entry in p.window] for p in batch]
        if self._lock is None:
            reports = self.model.detect_stream_batch(messages, timestamps)
        else:
            with self._lock:
                reports = self.model.detect_stream_batch(messages, timestamps)
        reports = fault_point("runtime.worker.result", reports)
        # A dropped result degrades the batch (the supervisor treats a
        # missing result like an exhausted retry budget).
        return None if reports is DROPPED else reports

    def load_weights(self, state: dict) -> None:
        """Hot-swap the served model's weights (the promotion path).

        Taken under the shared lock in threaded mode so a swap never
        interleaves with a scoring pass over half-new parameters.
        """
        if self._lock is None:
            self.model.model.load_state_dict(state)
        else:
            with self._lock:
                self.model.model.load_state_dict(state)


class EnsembleWorker:
    """Scores batches through a :class:`repro.detectors.Ensemble`.

    The ensemble keeps rolling per-system state (EWMA baselines, LOF
    reference buffers), so windows of one system must reach it in
    stream order — the engine's deterministic pump already guarantees
    that for every shard count, and batches are per-system lanes.  An
    optional shared lock serializes calls when shards run threaded,
    because that per-system state is a plain dict.
    """

    def __init__(self, ensemble, lock: threading.Lock | None = None):
        self.ensemble = ensemble
        self._lock = lock

    def _score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        reports = []
        for pending in batch:
            score = self.ensemble.score_window(pending.system, pending.window)
            reports.append(build_report(
                system=pending.system,
                score=score,
                threshold=self.ensemble.threshold,
                messages=[entry.message for entry in pending.window],
                interpretations=[entry.message for entry in pending.window],
                timestamps=[entry.timestamp for entry in pending.window],
            ))
        return reports

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        fault_point("runtime.worker.score")
        if self._lock is None:
            reports = self._score_batch(batch)
        else:
            with self._lock:
                reports = self._score_batch(batch)
        reports = fault_point("runtime.worker.result", reports)
        return None if reports is DROPPED else reports


class SyntheticWorker:
    """Deterministic scorer with a simulated per-batch inference cost.

    ``cost`` is called once per batch with the batch size; inject
    ``lambda n: time.sleep(...)`` to model fixed inference latency, or
    leave ``None`` for free scoring in unit tests.  Scores are a pure
    function of window content, so results are reproducible and
    shard-count independent.
    """

    def __init__(self, threshold: float = 0.5,
                 cost: Callable[[int], None] | None = None):
        self.threshold = threshold
        self.cost = cost
        self.batches_scored = 0

    def _score(self, window: list) -> float:
        digest = zlib.crc32(
            "\n".join(entry.message for entry in window).encode("utf-8")
        )
        return (digest % 1000) / 999.0

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        fault_point("runtime.worker.score")
        if self.cost is not None:
            self.cost(len(batch))
        self.batches_scored += 1
        reports = []
        for pending in batch:
            reports.append(build_report(
                system=pending.system,
                score=self._score(pending.window),
                threshold=self.threshold,
                messages=[entry.message for entry in pending.window],
                interpretations=[entry.message for entry in pending.window],
                timestamps=[entry.timestamp for entry in pending.window],
            ))
        reports = fault_point("runtime.worker.result", reports)
        return None if reports is DROPPED else reports


def resolve_cost(spec: tuple | None) -> Callable[[int], None] | None:
    """Turn a declarative per-batch cost spec into a callable.

    Cost specs are plain tuples so they survive pickling into worker
    processes unchanged — both executors then pay the *same* simulated
    inference cost, which keeps executor benchmarks honest:

    * ``("sleep", seconds)`` — I/O-shaped latency; releases the GIL, so
      threads overlap it.
    * ``("spin", iterations)`` — CPU-shaped work (a pure-Python LCG
      loop); holds the GIL, so only processes overlap it.
    """
    if spec is None:
        return None
    kind, amount = spec
    if kind == "sleep":
        seconds = float(amount)
        return lambda _n: time.sleep(seconds)
    if kind == "spin":
        iterations = int(amount)

        def spin(_n: int) -> None:
            value = 1
            for _ in range(iterations):
                value = (value * 1103515245 + 12345) % 2147483648

        return spin
    raise ValueError(f"unknown cost spec kind {kind!r}; expected sleep|spin")


def build_worker_from_spec(cfg: dict):
    """Construct ``(worker, pattern_fn, gate)`` inside a worker process.

    ``cfg`` is the picklable dict a
    :class:`~repro.runtime.procexec.ProcessWorkerSpec` ships to each
    shard process; model and ensemble kinds rehydrate their warm state
    from the shared-memory broadcast handle.  No locks are wired in:
    each process owns its model replica outright.
    """
    kind = cfg["kind"]
    if kind == "synthetic":
        worker = SyntheticWorker(threshold=cfg.get("threshold", 0.5),
                                 cost=resolve_cost(cfg.get("cost")))
        return worker, message_pattern, cfg.get("gate", True)

    from .broadcast import attach, restore_pipeline

    llm = None
    if cfg.get("llm_spec"):
        from ..llm.factory import provider_from_spec

        llm = provider_from_spec(cfg["llm_spec"], seed=cfg.get("seed", 0))
    pipeline = None
    if cfg.get("handle") is not None:
        attached = attach(cfg["handle"])
        pipeline = restore_pipeline(attached, llm=llm)
    if kind == "model":
        if pipeline is None:
            raise ValueError("model worker spec requires a broadcast handle")
        featurizer = pipeline._featurizer(pipeline.target_system)

        def raw_pattern(window: list) -> tuple[int, ...]:
            ids = {featurizer.event_id_of(entry.message) for entry in window}
            return tuple(sorted(ids))

        return ModelWorker(pipeline), raw_pattern, cfg.get("gate", True)
    if kind == "ensemble":
        from ..detectors import ensemble_from_spec

        ensemble = ensemble_from_spec(cfg["detectors"], pipeline=pipeline,
                                      seed=cfg.get("seed", 0))
        return EnsembleWorker(ensemble), message_pattern, False
    raise ValueError(
        f"unknown worker spec kind {kind!r}; expected synthetic|model|ensemble")


class FlakyWorker:
    """Fault injection wrapper: fail the next N calls, then delegate."""

    def __init__(self, inner: InferenceWorker, failures: int = 0):
        self.inner = inner
        self.failures_remaining = failures
        self.calls = 0

    def fail_next(self, count: int) -> None:
        """Arm ``count`` consecutive injected failures."""
        self.failures_remaining = count

    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport]:
        self.calls += 1
        if self.failures_remaining > 0:
            self.failures_remaining -= 1
            raise WorkerError("injected worker fault")
        return self.inner.score_batch(batch)
