"""Worker supervision: retries, timeout accounting, health, recovery.

The supervisor wraps one shard's inference worker and decides, per
batch, whether the model path is trustworthy:

* **Bounded retry with backoff** — a failing ``score_batch`` is retried
  up to ``max_retries`` times with exponential backoff (the sleep is
  injectable; the synchronous engine injects a no-op so determinism and
  tests never wait on wall time).
* **Timeout accounting** — execution is cooperative, so a slow batch
  cannot be preempted; instead its duration (from the injected clock) is
  compared against ``timeout`` after the fact.  The result is still
  used — detections are never discarded — but the overrun counts toward
  the health streak, so a persistently slow worker degrades.
* **Health state machine** — ``unhealthy_after`` consecutive bad batches
  (exhausted retries or overruns) mark the worker unhealthy.  While
  unhealthy, ``score_batch`` returns ``None`` immediately and the owning
  shard serves traffic from the pattern-library fast path.  After
  ``cooldown`` seconds the next batch becomes a recovery probe: one
  attempt, no retries; success restores the worker, failure doubles the
  cooldown (capped at 16x).

The state machine itself lives in :class:`~repro.runtime.health.HealthMonitor`
so the LLM circuit breaker (:mod:`repro.llm.middleware`) degrades with
identical open/probe/close semantics; this module adds the retry loop,
timeout accounting and ``repro.obs`` counters around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.report import AnomalyReport
from ..obs import get_registry
from ..testing.faultpoints import fault_point
from .health import HealthMonitor
from .scheduler import PendingWindow
from .worker import InferenceWorker

__all__ = ["RespawnPolicy", "WorkerSupervisor"]


@dataclass(frozen=True)
class RespawnPolicy:
    """How hard the process executor fights to keep a shard alive.

    ``max_spawn_attempts`` bounds consecutive failed process launches
    (spawn faults, fork errors) before the shard is abandoned to the
    parent-side pattern-library fallback; ``max_restarts`` bounds how
    many times one shard may be respawned over the run, so a
    crash-looping worker cannot refeed its journal forever.
    """

    max_spawn_attempts: int = 3
    max_restarts: int = 8

    def __post_init__(self) -> None:
        if self.max_spawn_attempts < 1:
            raise ValueError(
                f"max_spawn_attempts must be >= 1, got {self.max_spawn_attempts}")
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}")


def _no_sleep(_seconds: float) -> None:
    return None


class WorkerSupervisor:
    """Health-aware wrapper around one shard's inference worker."""

    def __init__(self, worker: InferenceWorker, *,
                 clock: Callable[[], float] | None = None,
                 max_retries: int = 2, backoff_base: float = 0.05,
                 backoff_cap: float = 1.0, timeout: float | None = None,
                 unhealthy_after: int = 3, cooldown: float = 1.0,
                 sleep: Callable[[float], None] | None = None,
                 registry=None, prefix: str = "runtime", scope: str = ""):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        registry = registry if registry is not None else get_registry()
        self.worker = worker
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.monitor = HealthMonitor(unhealthy_after=unhealthy_after,
                                     cooldown=cooldown)
        self._clock = clock or registry.clock
        self._sleep = sleep or _no_sleep
        self.last_error: BaseException | None = None
        # ``scope`` isolates per-shard counters in threaded engines (see
        # ShardState); flat names when empty.
        self._retries = registry.counter(f"{prefix}.worker_retries{scope}")
        self._failures = registry.counter(f"{prefix}.worker_failures{scope}")
        self._timeouts = registry.counter(f"{prefix}.worker_timeouts{scope}")
        self._transitions = registry.counter(f"{prefix}.unhealthy_transitions{scope}")
        self._recoveries = registry.counter(f"{prefix}.worker_recoveries{scope}")

    @property
    def healthy(self) -> bool:
        return self.monitor.healthy

    @property
    def unhealthy_after(self) -> int:
        return self.monitor.unhealthy_after

    @property
    def cooldown(self) -> float:
        return self.monitor.cooldown

    # ------------------------------------------------------------------
    def force_unhealthy(self, cooldown: float | None = None) -> None:
        """Fault injection / operator override: degrade immediately."""
        if self.monitor.force_unhealthy(self._clock(), cooldown):
            self._transitions.inc()

    def _record_bad(self, now: float) -> None:
        if self.monitor.record_bad(now):
            self._transitions.inc()

    def _attempt(self, batch: list[PendingWindow]) -> tuple[list[AnomalyReport], float]:
        start = self._clock()
        # Between the two clock reads on purpose: a ``timeout`` fault here
        # skews the injected clock so this attempt overruns its budget.
        fault_point("runtime.supervisor.attempt")
        reports = self.worker.score_batch(batch)
        return reports, self._clock() - start

    # ------------------------------------------------------------------
    def score_batch(self, batch: list[PendingWindow]) -> list[AnomalyReport] | None:
        """Score through the worker; ``None`` means *degraded* — the
        caller must answer the batch from the pattern fallback."""
        now = self._clock()
        if not self.monitor.healthy:
            if not self.monitor.ready_to_probe(now):
                return None
            return self._probe(batch)

        attempts = 1 + self.max_retries
        for attempt in range(attempts):
            try:
                reports, elapsed = self._attempt(batch)
            except Exception as exc:  # lint: disable=blanket-except
                # The supervisor is the containment boundary: any worker
                # failure must degrade gracefully, never crash the shard.
                self._failures.inc()
                self.last_error = exc
                if attempt + 1 < attempts:
                    self._retries.inc()
                    self._sleep(min(self.backoff_base * (2 ** attempt),
                                    self.backoff_cap))
                continue
            if self.timeout is not None and elapsed > self.timeout:
                # Cooperative timeout: keep the (late) result, count the
                # overrun toward the health streak.
                self._timeouts.inc()
                self._record_bad(self._clock())
            else:
                self.monitor.record_good()
            return reports

        self._record_bad(self._clock())
        return None

    def _probe(self, batch: list[PendingWindow]) -> list[AnomalyReport] | None:
        """Single-attempt recovery probe after the cooldown elapsed."""
        try:
            reports, elapsed = self._attempt(batch)
        except Exception as exc:  # lint: disable=blanket-except
            # Probe failed: stay degraded, back the cooldown off.
            self._failures.inc()
            self.last_error = exc
            self.monitor.probe_failed(self._clock())
            return None
        if self.timeout is not None and elapsed > self.timeout:
            self._timeouts.inc()
            self.monitor.probe_failed(self._clock())
            return reports
        self.monitor.probe_succeeded()
        self.last_error = None
        self._recoveries.inc()
        return reports
