"""Process-based shard executor: true parallelism past the GIL.

The threaded engine overlaps *waiting* (simulated or remote inference
latency) but cannot overlap *computing*: CPU-bound scoring serializes on
the GIL, which caps the threaded scaling curve (ROADMAP open item #1).
This module runs each shard in its own **worker process**:

* **Warm start via shared memory** — the parent packs every model /
  featurizer array into one :class:`~repro.runtime.broadcast.WeightBroadcast`
  arena; each child attaches zero-copy and rebuilds a warm pipeline
  replica before its first batch (npz fallback when shm is unavailable).
* **Determinism by construction** — routing stays system-sticky, every
  record carries the engine-assigned sequence number in a
  :class:`~repro.runtime.queues.RecordEnvelope`, and each child runs the
  same :class:`~repro.runtime.shard.ShardState` windowing/gating code
  over exactly the records sync mode would hand that shard, in the same
  order.  Report identity is keyed by window id (system + per-system
  window ordinal), which is a pure function of the input stream — so
  ``repro replay --shards N --executor process`` renders byte-identical
  to sync mode.
* **Crash supervision with exactly-once output** — the parent keeps a
  per-shard journal of every envelope it ever sent.  A dead child
  (detected on flush/drain, or killed by the ``runtime.proc.death``
  fault) is respawned with the same warm-start path on a **fresh epoch**
  with fresh IPC queues (a SIGKILL mid-write can corrupt a pipe, so old
  queues are abandoned unread), and the journal is refed.  The respawned
  child recomputes every window; the parent deduplicates on window id,
  so nothing is lost and nothing is emitted twice.  If respawning is
  exhausted (:class:`~repro.runtime.supervisor.RespawnPolicy`), the
  shard degrades to a parent-side pattern-library fallback — the same
  degraded path an unhealthy in-process worker takes.

The ``multiprocessing`` constructions here (and in ``broadcast``) are
the only ones the project permits — the ``direct-process`` lint rule
enforces that, mirroring ``direct-thread``.
"""

from __future__ import annotations

import contextlib
import os
import signal
from dataclasses import dataclass

from ..obs import MetricsRegistry, use_registry
from ..testing.faultpoints import fault_point
from .broadcast import WeightBroadcast, pipeline_state
from .queues import RecordEnvelope
from .shard import ShardState
from .supervisor import RespawnPolicy, WorkerSupervisor
from .worker import WorkerError, build_worker_from_spec

__all__ = ["ProcessWorkerSpec", "ProcessShardExecutor"]

# Records per IPC message: amortizes pickling/queue overhead without
# letting the parent run far ahead of a crashed child.
_CHUNK = 32


@dataclass(frozen=True)
class ProcessWorkerSpec:
    """Declarative, broadcast-backed recipe for per-process workers.

    The executor cannot ship live worker objects to children (models and
    ensembles hold unpicklable or unshareable state), so it ships this
    spec instead: children rebuild their worker from it via
    :func:`~repro.runtime.worker.build_worker_from_spec`.  ``broadcast``
    stays parent-side; children receive only its picklable handle.
    """

    kind: str
    threshold: float = 0.5
    cost: tuple | None = None
    detectors: str | None = None
    seed: int = 0
    llm_spec: str | None = None
    gate: bool = True
    broadcast: WeightBroadcast | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "model", "ensemble"):
            raise ValueError(
                f"unknown worker spec kind {self.kind!r}; "
                "expected synthetic|model|ensemble")
        if self.kind == "model" and self.broadcast is None:
            raise ValueError("model worker spec requires a weight broadcast")
        if self.kind == "ensemble" and not self.detectors:
            raise ValueError("ensemble worker spec requires a detectors spec")

    # ------------------------------------------------------------------
    @classmethod
    def synthetic(cls, threshold: float = 0.5, cost: tuple | None = None,
                  gate: bool = True) -> "ProcessWorkerSpec":
        """Deterministic content-hash scorer (tests, benchmarks, CLI
        runs without a model)."""
        return cls(kind="synthetic", threshold=threshold, cost=cost, gate=gate)

    @classmethod
    def for_pipeline(cls, pipeline, *, llm_spec: str | None = None,
                     use_shm: bool = True) -> "ProcessWorkerSpec":
        """Broadcast a fitted LogSynergy pipeline; children score through
        warm :class:`~repro.runtime.worker.ModelWorker` replicas."""
        arrays, meta = pipeline_state(pipeline)
        return cls(kind="model", llm_spec=llm_spec,
                   broadcast=WeightBroadcast(arrays, meta, use_shm=use_shm))

    @classmethod
    def ensemble(cls, detectors: str, *, seed: int = 0, pipeline=None,
                 llm_spec: str | None = None,
                 use_shm: bool = True) -> "ProcessWorkerSpec":
        """Children rebuild a detector ensemble from its spec string
        (plus an optional broadcast pipeline for model members).  The
        pattern gate is off, as in :meth:`InferenceRuntime.from_ensemble`."""
        broadcast = None
        if pipeline is not None:
            arrays, meta = pipeline_state(pipeline)
            broadcast = WeightBroadcast(arrays, meta, use_shm=use_shm)
        return cls(kind="ensemble", detectors=detectors, seed=seed,
                   llm_spec=llm_spec, gate=False, broadcast=broadcast)


class _AbandonedWorker:
    """Worker for a shard whose process cannot be kept alive: every
    batch fails, so the supervisor degrades it and the shard answers
    from the pattern-library fallback."""

    def score_batch(self, batch):
        raise WorkerError("shard process abandoned after repeated failures")


class _ShardSlot:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("index", "process", "in_q", "out_q", "epoch", "journal",
                 "buffer", "emitted", "restarts", "fallback")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.in_q = None
        self.out_q = None
        self.epoch = 0
        # Every envelope ever submitted to this shard, in submit order —
        # the respawn path refeeds this to rebuild the child's state.
        self.journal: list[RecordEnvelope] = []
        self.buffer: list[RecordEnvelope] = []
        # Window ids already emitted to the engine (membership checks
        # only): the exactly-once guarantee across respawns.
        self.emitted: set[str] = set()
        self.restarts = 0
        self.fallback: ShardState | None = None


class ProcessShardExecutor:
    """Drives one worker process per shard for an
    :class:`~repro.runtime.engine.InferenceRuntime`."""

    def __init__(self, spec: ProcessWorkerSpec, *, shards: int,
                 pattern_fn, normalize, emit,
                 window: int = 10, step: int = 5, max_batch: int = 16,
                 max_latency: float | None = None,
                 supervisor_options: dict | None = None,
                 fallback_threshold: float = 0.5,
                 max_patterns: int = 100_000,
                 registry=None, prefix: str = "runtime",
                 poll_interval: float = 0.05,
                 drain_timeout: float = 60.0,
                 respawn_policy: RespawnPolicy | None = None):
        import multiprocessing

        self.spec = spec
        self._emit = emit
        # For the parent-side degraded fallback only — worker processes
        # derive their own pattern function from the spec.
        self._pattern_fn = pattern_fn
        self._normalize = normalize
        self._registry = registry
        self._clock = registry.clock
        self._prefix = prefix
        self._poll_interval = poll_interval
        self._drain_timeout = drain_timeout
        self._policy = respawn_policy or RespawnPolicy()
        # The injected clock/sleep hooks tests wire into supervisors are
        # closures — not reliably picklable, and meaningless in a child
        # that keeps its own time.  Children get the sanitized rest.
        child_options = {key: value
                         for key, value in (supervisor_options or {}).items()
                         if key not in ("clock", "sleep")}
        self._shard_params = {
            "window": window, "step": step, "max_batch": max_batch,
            "max_latency": max_latency,
            "fallback_threshold": fallback_threshold,
            "max_patterns": max_patterns, "prefix": prefix,
            "supervisor_options": child_options,
        }
        self._supervisor_options = dict(supervisor_options or {})
        # Fork keeps the broadcast attach cheap (the arena is already
        # mapped); spawn is the portable fallback.
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
        self._ctx = multiprocessing.get_context(method)
        self._slots = [_ShardSlot(index) for index in range(shards)]
        self._started = False
        self._stopped = False
        self._spawned = registry.counter(f"{prefix}.proc.spawned")
        self._deaths = registry.counter(f"{prefix}.proc.deaths")
        self._restarts = registry.counter(f"{prefix}.proc.restarts")
        self._spawn_failures = registry.counter(f"{prefix}.proc.spawn_failures")
        self._refed = registry.counter(f"{prefix}.proc.refed_records")
        self._rebroadcasts = registry.counter(f"{prefix}.proc.rebroadcasts")
        self._live = registry.gauge(f"{prefix}.proc.live")
        broadcast_bytes = registry.gauge(f"{prefix}.proc.broadcast_bytes")
        if spec.broadcast is not None:
            broadcast_bytes.set(spec.broadcast.total_bytes)

    # ------------------------------------------------------------------
    def _child_cfg(self) -> dict:
        cfg = {
            "kind": self.spec.kind, "threshold": self.spec.threshold,
            "cost": self.spec.cost, "detectors": self.spec.detectors,
            "seed": self.spec.seed, "llm_spec": self.spec.llm_spec,
            "gate": self.spec.gate, "handle": None,
        }
        if self.spec.broadcast is not None:
            cfg["handle"] = self.spec.broadcast.handle()
        cfg.update(self._shard_params)
        return cfg

    def ensure_started(self) -> None:
        if self._started:
            return
        if self._stopped:
            raise RuntimeError("process executor already stopped")
        self._started = True
        for slot in self._slots:
            self._spawn(slot)

    def _spawn(self, slot: _ShardSlot) -> None:
        """Launch ``slot``'s worker process on a fresh epoch; abandons
        the shard to the degraded fallback when attempts run out."""
        for _attempt in range(self._policy.max_spawn_attempts):
            try:
                fault_point("runtime.proc.spawn")
                slot.epoch += 1
                slot.in_q = self._ctx.Queue()
                slot.out_q = self._ctx.Queue()
                process = self._ctx.Process(
                    target=_shard_process_main,
                    args=(slot.index, slot.epoch, self._child_cfg(),
                          slot.in_q, slot.out_q),
                    name=f"repro-proc-shard-{slot.index}", daemon=True,
                )
                process.start()
            except (OSError, RuntimeError):
                self._spawn_failures.inc()
                continue
            slot.process = process
            self._spawned.inc()
            self._refresh_live()
            return
        self._abandon(slot)

    def _refresh_live(self) -> None:
        live = 0
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                live += 1
        self._live.set(live)

    # ------------------------------------------------------------------
    def _accept(self, slot: _ShardSlot, report) -> None:
        """Emit a child (or fallback) report exactly once per window."""
        window_id = report.metadata.get("window_id")
        if window_id is not None:
            if window_id in slot.emitted:
                return
            slot.emitted.add(window_id)
        self._emit(report)

    def _abandon_queues(self, slot: _ShardSlot) -> None:
        # Never read from a dead child's queues: a SIGKILL mid-write can
        # leave a partial pickle in the pipe.  Close and walk away.
        for queue in (slot.in_q, slot.out_q):
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()
        slot.in_q = None
        slot.out_q = None

    def _abandon(self, slot: _ShardSlot) -> None:
        """Give up on ``slot``'s process: serve it from a parent-side
        degraded shard (pattern-library fallback), refed from the
        journal so no admitted record is lost."""
        self._abandon_queues(slot)
        slot.process = None
        self._refresh_live()
        options = dict(self._supervisor_options)
        options.setdefault("clock", self._registry.clock)
        options.update(max_retries=0, unhealthy_after=1,
                       cooldown=float("inf"))
        scope = f".shard{slot.index}"
        supervisor = WorkerSupervisor(
            _AbandonedWorker(), registry=self._registry,
            prefix=self._prefix, scope=scope, **options)
        params = self._shard_params
        slot.fallback = ShardState(
            slot.index, supervisor,
            pattern_fn=self._pattern_fn,
            emit=lambda report, _slot=slot: self._accept(_slot, report),
            normalize=self._normalize,
            registry=self._registry, clock=self._registry.clock,
            window=params["window"], step=params["step"],
            max_batch=params["max_batch"], max_latency=params["max_latency"],
            fallback_threshold=params["fallback_threshold"],
            max_patterns=params["max_patterns"],
            prefix=self._prefix, scope=scope, spans=False,
            gate=self.spec.gate,
        )
        slot.buffer = []
        for envelope in slot.journal:
            slot.fallback.ingest(envelope.record)
            slot.fallback.flush_ready(self._clock())

    def _recover(self, slot: _ShardSlot) -> None:
        """A dead worker process: count it, respawn on a fresh epoch,
        and refeed the journal through the warm-start path."""
        self._deaths.inc()
        if slot.process is not None:
            slot.process.join(timeout=1.0)
        self._abandon_queues(slot)
        slot.process = None
        slot.buffer = []
        if slot.restarts >= self._policy.max_restarts:
            self._abandon(slot)
            return
        slot.restarts += 1
        self._spawn(slot)
        if slot.fallback is not None:
            return
        self._restarts.inc()
        if slot.journal:
            for start in range(0, len(slot.journal), _CHUNK):
                slot.in_q.put(("recs", slot.journal[start:start + _CHUNK]))
            self._refed.inc(len(slot.journal))

    def swap_weights(self, model_state: dict) -> None:
        """Promote new model weights into every shard process.

        Rebuilds the weight broadcast with the ``model/*`` arrays
        replaced (featurizer state is unchanged — the candidate was
        fine-tuned behind the same featurizers), installs it as the
        spec every future respawn warm-starts from, then ships the
        state to live children in-band.  Dead children are recovered
        through the normal respawn path, which now attaches the new
        arena.  The old arena is unlinked only after the replacement is
        fully populated; children that still hold mappings keep them
        until their own close.
        """
        import dataclasses

        from .broadcast import attach

        if self.spec.kind != "model" or self.spec.broadcast is None:
            raise ValueError(
                "weight swap requires a model worker spec with a broadcast, "
                f"got kind={self.spec.kind!r}")
        self.ensure_started()
        old = self.spec.broadcast
        attached = attach(old.handle())
        try:
            prefix = "model/"
            expected = {key[len(prefix):] for key in attached.arrays
                        if key.startswith(prefix)}
            if set(model_state) != expected:
                raise ValueError(
                    "candidate state keys do not match the serving model "
                    f"({len(model_state)} vs {len(expected)} arrays)")
            arrays = {}
            for key, value in attached.arrays.items():
                if key.startswith(prefix):
                    arrays[key] = model_state[key[len(prefix):]]
                else:
                    arrays[key] = value
            # The constructor copies every array into the fresh arena,
            # so the zero-copy views above are read exactly once while
            # the old mapping is still alive.
            replacement = WeightBroadcast(arrays, attached.meta,
                                          use_shm=old.via_shared_memory)
        finally:
            attached.close()
        self.spec = dataclasses.replace(self.spec, broadcast=replacement)
        old.unlink()
        self._rebroadcasts.inc()
        for slot in self._slots:
            if slot.fallback is not None:
                continue
            if slot.process is None or not slot.process.is_alive():
                self._recover(slot)
                continue
            slot.in_q.put(("swap", model_state))

    def _kill(self, slot: _ShardSlot) -> None:
        if slot.process is not None and slot.process.pid is not None:
            # Already-exited child: nothing to kill, recovery proceeds.
            with contextlib.suppress(ProcessLookupError):
                os.kill(slot.process.pid, signal.SIGKILL)

    # ------------------------------------------------------------------
    def submit(self, index: int, seq: int, record) -> None:
        self.ensure_started()
        slot = self._slots[index]
        envelope = RecordEnvelope(seq, record)
        slot.journal.append(envelope)
        if slot.fallback is not None:
            slot.fallback.ingest(record)
            slot.fallback.flush_ready(self._clock())
            return
        # The death probe: a `corrupt -> True` fault here SIGKILLs this
        # shard's process mid-stream (what the fuzz invariant exercises).
        if fault_point("runtime.proc.death", False):
            self._kill(slot)
        slot.buffer.append(envelope)
        if len(slot.buffer) >= _CHUNK:
            self._flush(slot)
        self._poll_out(slot)

    def _flush(self, slot: _ShardSlot) -> None:
        if not slot.buffer or slot.fallback is not None:
            return
        if slot.process is None or not slot.process.is_alive():
            self._recover(slot)
            return
        slot.in_q.put(("recs", list(slot.buffer)))
        slot.buffer.clear()

    def _poll_out(self, slot: _ShardSlot) -> None:
        """Opportunistically ship finished reports upward (non-blocking),
        so long streams don't buffer everything until drain."""
        import queue as queue_mod

        if slot.out_q is None:
            return
        while True:
            try:
                message = slot.out_q.get_nowait()
            except queue_mod.Empty:
                return
            except (OSError, EOFError):
                return
            try:
                self._consume(slot, message)
            except _ChildFailed:
                # The next flush/drain notices the killed process and
                # runs the full recovery path.
                return

    def _consume(self, slot: _ShardSlot, message) -> bool:
        """Apply one child message; True when it was the awaited
        ``drained`` ack for the current epoch."""
        kind = message[0]
        if kind == "reports":
            # Any epoch: stale reports are deduplicated by window id.
            for report in message[2]:
                self._accept(slot, report)
            return False
        if kind == "drained":
            if message[1] == slot.epoch:
                self._merge_snapshot(message[2])
                return True
            return False
        if kind == "error":
            # The child loop is dead even if the process lingers.
            self._kill(slot)
            raise _ChildFailed(message[2])
        return False

    def _merge_snapshot(self, snapshot) -> None:
        """Fold a child's metric deltas into the parent registry."""
        for name, kind, payload in snapshot:
            if kind == "counter":
                if payload:
                    self._registry.counter(name).inc(payload)
            elif kind == "gauge":
                self._registry.gauge(name).set(payload)
            elif kind == "histogram":
                boundaries = tuple(payload["boundaries"])
                histogram = self._registry.histogram(name,
                                                     boundaries=boundaries)
                if histogram.boundaries != boundaries:
                    continue
                for position, bucket in enumerate(payload["bucket_counts"]):
                    histogram.bucket_counts[position] += bucket
                histogram.count += payload["count"]
                histogram.sum += payload["sum"]
                if payload["count"]:
                    histogram.min = min(histogram.min, payload["min"])
                    histogram.max = max(histogram.max, payload["max"])

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Full barrier: every shard flushes residual windows and acks.

        Dead children discovered here are recovered (respawn + journal
        refeed) and re-drained; the window-id dedup keeps the combined
        output exactly-once whatever happened in between.
        """
        self.ensure_started()
        for slot in self._slots:
            self._drain_slot(slot)

    def _drain_slot(self, slot: _ShardSlot) -> None:
        import queue as queue_mod

        while slot.fallback is None:
            deadline = self._clock() + self._drain_timeout
            self._flush(slot)
            if slot.fallback is not None:
                break
            if slot.process is None or not slot.process.is_alive():
                self._recover(slot)
                continue
            slot.in_q.put(("drain", slot.epoch))
            acked = False
            failed = False
            while not acked and not failed:
                try:
                    message = slot.out_q.get(timeout=self._poll_interval)
                except queue_mod.Empty:
                    if not slot.process.is_alive():
                        failed = True
                    elif self._clock() > deadline:
                        raise RuntimeError(
                            f"shard {slot.index} process did not drain "
                            f"within {self._drain_timeout}s")
                    continue
                except (OSError, EOFError):
                    failed = True
                    continue
                try:
                    acked = self._consume(slot, message)
                except _ChildFailed:
                    failed = True
            if acked:
                return
            self._recover(slot)
        # Degraded mode: score residual batches on the caller's thread,
        # in the same canonical per-shard order the engine uses.
        residual = sorted(slot.fallback.drain_batches(),
                          key=lambda entry: entry[0])
        for _system, batch in residual:
            slot.fallback.score_batch(batch)

    def queue_depths(self) -> list[int]:
        """Records admitted but not yet handed to a worker process."""
        return [len(slot.buffer) for slot in self._slots]

    def stop(self, timeout: float | None = 30.0) -> None:
        """Drain, stop every worker process, release the arena."""
        if self._stopped:
            return
        if self._started:
            self.drain()
        self._stopped = True
        join_timeout = timeout if timeout is not None else 30.0
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                # A torn pipe just means the child is already gone; the
                # join/terminate ladder below reaps it either way.
                with contextlib.suppress(OSError, ValueError):
                    slot.in_q.put(("stop",))
                slot.process.join(timeout=join_timeout)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=join_timeout)
            slot.process = None
            self._abandon_queues(slot)
        self._refresh_live()
        if self.spec.broadcast is not None:
            self.spec.broadcast.unlink()


class _ChildFailed(RuntimeError):
    """A worker process reported a fatal error from its loop."""


# ---------------------------------------------------------------------------
# Worker-process entry point.
# ---------------------------------------------------------------------------

def _registry_snapshot(registry) -> list[tuple]:
    from ..obs.metrics import Counter, Gauge, Histogram

    snapshot: list[tuple] = []
    for name, metric in registry.metrics().items():
        if isinstance(metric, Counter):
            snapshot.append((name, "counter", metric.value))
        elif isinstance(metric, Gauge):
            snapshot.append((name, "gauge", metric.value))
        elif isinstance(metric, Histogram):
            snapshot.append((name, "histogram", {
                "boundaries": metric.boundaries,
                "bucket_counts": list(metric.bucket_counts),
                "count": metric.count, "sum": metric.sum,
                "min": metric.min, "max": metric.max,
            }))
    return snapshot


def _registry_reset(registry) -> None:
    """Zero counters/histograms after a snapshot so the next ``drained``
    ack ships deltas (gauges carry last-value semantics and stay)."""
    from ..obs.metrics import Counter, Histogram

    for metric in registry.metrics().values():
        if isinstance(metric, Counter):
            metric.value = 0.0
        elif isinstance(metric, Histogram):
            metric.bucket_counts = [0] * len(metric.bucket_counts)
            metric.count = 0
            metric.sum = 0.0
            metric.min = float("inf")
            metric.max = float("-inf")


def _shard_process_main(index: int, epoch: int, cfg: dict,
                        in_q, out_q) -> None:
    """One shard's whole life inside its worker process.

    Builds a warm worker from the spec (attaching the weight broadcast),
    then serves ``recs`` / ``drain`` / ``stop`` messages.  Reports flow
    up tagged with the spawn epoch; the parent ignores stale acks and
    deduplicates reports, so this function never needs to know whether
    it is a first launch or a post-crash respawn over a refed journal.
    """
    from ..deploy.formatter import LogFormatter

    try:
        registry = MetricsRegistry()
        with use_registry(registry):
            worker, pattern_fn, gate = build_worker_from_spec(cfg)
            options = dict(cfg.get("supervisor_options") or {})
            options.setdefault("clock", registry.clock)
            scope = f".shard{index}"
            supervisor = WorkerSupervisor(
                worker, registry=registry, prefix=cfg["prefix"],
                scope=scope, **options)
            reports: list = []
            shard = ShardState(
                index, supervisor,
                pattern_fn=pattern_fn, emit=reports.append,
                normalize=LogFormatter._normalize,
                registry=registry, clock=registry.clock,
                window=cfg["window"], step=cfg["step"],
                max_batch=cfg["max_batch"], max_latency=cfg["max_latency"],
                fallback_threshold=cfg["fallback_threshold"],
                max_patterns=cfg["max_patterns"],
                prefix=cfg["prefix"], scope=scope, spans=False, gate=gate,
            )
            while True:
                message = in_q.get()
                kind = message[0]
                if kind == "recs":
                    for envelope in message[1]:
                        shard.ingest(envelope.record)
                    shard.flush_ready(registry.clock())
                elif kind == "drain":
                    # Residual lanes flush in the same canonical order
                    # the synchronous engine uses (sorted by system).
                    residual = sorted(shard.drain_batches(),
                                      key=lambda entry: entry[0])
                    for _system, batch in residual:
                        shard.score_batch(batch)
                    if reports:
                        out_q.put(("reports", epoch, list(reports)))
                        reports.clear()
                    out_q.put(("drained", epoch,
                               _registry_snapshot(registry)))
                    _registry_reset(registry)
                    continue
                elif kind == "swap":
                    # Hot weight promotion: only model specs receive
                    # this, and their worker is always a ModelWorker.
                    worker.load_weights(message[1])
                    continue
                elif kind == "stop":
                    break
                if reports:
                    out_q.put(("reports", epoch, list(reports)))
                    reports.clear()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return
    except Exception as exc:  # lint: disable=blanket-except
        # Last gasp: tell the parent this loop is dead so it can respawn
        # instead of waiting out the drain timeout.
        with contextlib.suppress(Exception):  # queue may already be gone
            out_q.put(("error", epoch, repr(exc)))
