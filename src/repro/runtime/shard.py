"""Per-shard state: windowing, pattern gate, lanes, scoring, resolution.

A shard owns every stage of its systems' traffic after routing:

1. **Windowing** — records are normalized and assembled into the
   production sliding window per system (a system never spans shards, so
   per-system windows are independent of the shard count).
2. **Pattern gate** — each window's event-id pattern is looked up in the
   shard's per-system :class:`~repro.deploy.pattern_library.PatternLibrary`.
   Known patterns resolve immediately; windows whose pattern is already
   awaiting a verdict become *followers* (they resolve silently when the
   batch lands, exactly like the duplicate-dedup of the original online
   service); novel patterns join the micro-batch scheduler.
3. **Scoring** — due batches go through the
   :class:`~repro.runtime.supervisor.WorkerSupervisor`.  A healthy worker
   returns model reports: verdicts are remembered, anomalous windows are
   emitted.  A degraded worker returns ``None``: every window in the
   batch is answered by the :class:`~repro.runtime.fallback.PatternFallback`
   and emitted with ``degraded`` metadata (detections are never dropped).

Per-system pattern scoping is deliberate: it makes every verdict a
function of that system's stream alone, which is what lets ``repro
replay`` produce identical reports at any shard count.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..core.report import AnomalyReport
from ..obs import LATENCY_BUCKETS
from .fallback import PatternFallback
from .scheduler import MicroBatchScheduler, PendingWindow
from .supervisor import WorkerSupervisor

__all__ = ["ShardState", "BATCH_SIZE_BUCKETS"]

# Micro-batch sizes are small integers; buckets at the powers of two.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class ShardState:
    """All mutable state for one shard.  Not thread-safe by itself: the
    synchronous engine drives it from one thread, the threaded engine
    confines each instance to its shard's worker thread."""

    def __init__(self, index: int, supervisor: WorkerSupervisor, *,
                 pattern_fn: Callable[[list], tuple[int, ...]],
                 emit: Callable[[AnomalyReport], None],
                 normalize: Callable,
                 registry, clock: Callable[[], float],
                 window: int = 10, step: int = 5,
                 max_batch: int = 16, max_latency: float | None = None,
                 fallback_threshold: float = 0.5,
                 max_patterns: int = 100_000,
                 prefix: str = "runtime", scope: str = "",
                 spans: bool = False, gate: bool = True):
        # Local import: repro.deploy's package __init__ pulls in the online
        # service, which builds on this engine (it imports us lazily).
        from ..deploy.pattern_library import PatternLibrary

        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        self.index = index
        self.supervisor = supervisor
        # Rate- and novelty-based workers (detector ensembles) must see
        # every window: with ``gate=False`` the pattern library neither
        # short-circuits repeats nor absorbs followers, and verdicts are
        # not memoized.
        self.gate = gate
        self.scheduler = MicroBatchScheduler(max_batch, max_latency)
        self.window = window
        self.step = step
        self._pattern_fn = pattern_fn
        self._emit = emit
        self._normalize = normalize
        self._clock = clock
        self._spans = spans
        self._prefix = prefix
        self._tracer = registry.tracer
        self._library_cls = PatternLibrary
        self._max_patterns = max_patterns
        self._fallback_threshold = fallback_threshold
        self._assembly: dict[str, list] = {}
        self._window_index: dict[str, int] = {}
        self.libraries: dict[str, object] = {}
        self._fallbacks: dict[str, PatternFallback] = {}
        # (system, pattern) -> follower window ids awaiting the verdict.
        self._awaiting: dict[tuple[str, tuple[int, ...]], list[str]] = {}
        # ``scope`` suffixes metric names per shard in threaded mode, so
        # concurrent shards never share (and race on) one counter object;
        # synchronous engines pass "" and keep the flat names.
        self._windows = registry.counter(f"{prefix}.windows_seen{scope}")
        self._invocations = registry.counter(f"{prefix}.model_invocations{scope}")
        self._library_hits = registry.counter(f"{prefix}.library_hits{scope}")
        self._anomalies = registry.counter(f"{prefix}.anomalies_raised{scope}")
        self._degraded = registry.counter(f"{prefix}.degraded_windows{scope}")
        self._batches = registry.counter(f"{prefix}.batches{scope}")
        self._latency = registry.histogram(f"{prefix}.window_seconds{scope}",
                                           boundaries=LATENCY_BUCKETS)
        self._batch_size = registry.histogram(f"{prefix}.batch_size{scope}",
                                              boundaries=BATCH_SIZE_BUCKETS)
        self._batch_seconds = registry.histogram(f"{prefix}.batch_seconds{scope}")

    # ------------------------------------------------------------------
    def _library_of(self, system: str):
        library = self.libraries.get(system)
        if library is None:
            library = self._library_cls(max_patterns=self._max_patterns)
            self.libraries[system] = library
            self._fallbacks[system] = PatternFallback(
                library, threshold=self._fallback_threshold
            )
        return library

    def ingest(self, record) -> None:
        """Window one record; gate any windows it completes."""
        entry = self._normalize(record)
        lane = self._assembly.setdefault(record.system, [])
        lane.append(entry)
        while len(lane) >= self.window:
            completed = lane[: self.window]
            del lane[: self.step]
            self._gate(record.system, completed)

    def _gate(self, system: str, window_entries: list) -> None:
        start = self._clock()
        self._windows.inc()
        index = self._window_index.get(system, 0)
        self._window_index[system] = index + 1
        pattern = self._pattern_fn(window_entries)
        library = self._library_of(system)
        cached = library.lookup(pattern) if self.gate else None
        gate_seconds = self._clock() - start
        if cached is not None:
            self._library_hits.inc()
            self._latency.observe(gate_seconds)
            return
        key = (system, pattern)
        if not self.gate:
            self.scheduler.add(PendingWindow(
                system=system, index=index, window=window_entries,
                pattern=pattern, enqueued_at=self._clock(),
                gate_seconds=gate_seconds,
            ))
            return
        if key in self._awaiting:
            # Follower: the verdict is already on its way through the
            # scheduler; this window never reaches the model.
            self._awaiting[key].append(f"{system}:{index}")
            self._latency.observe(gate_seconds)
            return
        self._awaiting[key] = []
        self.scheduler.add(PendingWindow(
            system=system, index=index, window=window_entries,
            pattern=pattern, enqueued_at=self._clock(),
            gate_seconds=gate_seconds,
        ))

    # ------------------------------------------------------------------
    def flush_ready(self, now: float) -> None:
        """Score every batch due under the size / latency triggers."""
        for batch in self.scheduler.ready_batches(now):
            self.score_batch(batch)

    def drain_batches(self) -> list[tuple[str, list[PendingWindow]]]:
        """Pop all residual batches (end of stream), tagged by system so
        the engine can flush them in canonical lane order."""
        return [(batch[0].system, batch) for batch in self.scheduler.drain()]

    def pending_windows(self) -> int:
        return len(self.scheduler)

    # ------------------------------------------------------------------
    def score_batch(self, batch: list[PendingWindow]) -> None:
        """Run one batch through the supervisor and resolve its windows."""
        if not batch:
            return
        span = (self._tracer.span(f"{self._prefix}.flush", shard=self.index,
                                  system=batch[0].system, batch=len(batch))
                if self._spans else None)
        start = self._clock()
        if span is not None:
            with span:
                reports = self.supervisor.score_batch(batch)
        else:
            reports = self.supervisor.score_batch(batch)
        elapsed = self._clock() - start
        self._batches.inc()
        self._batch_size.observe(len(batch))
        self._batch_seconds.observe(elapsed)
        share = elapsed / len(batch)
        if reports is None:
            self._resolve_degraded(batch, share)
        else:
            self._resolve_scored(batch, reports, share)

    def _resolve_scored(self, batch: list[PendingWindow],
                        reports: list[AnomalyReport], share: float) -> None:
        self._invocations.inc(len(batch))
        for pending, report in zip(batch, reports):
            if self.gate:
                library = self._library_of(pending.system)
                library.remember(pending.pattern, report.is_anomalous)
            self._awaiting.pop((pending.system, pending.pattern), None)
            self._latency.observe(pending.gate_seconds + share)
            if report.is_anomalous:
                self._anomalies.inc()
                self._emit(dataclasses.replace(report, metadata={
                    **report.metadata, "window_id": pending.window_id,
                }))

    def _fallback_of(self, system: str) -> PatternFallback:
        # With the gate off nothing has touched _library_of for this
        # system yet; creating the (empty) library also creates the
        # fallback that answers degraded batches.
        self._library_of(system)
        return self._fallbacks[system]

    def _resolve_degraded(self, batch: list[PendingWindow], share: float) -> None:
        for pending in batch:
            fallback = self._fallback_of(pending.system)
            report = fallback.score(pending)
            self._degraded.inc()
            # Degraded verdicts are not remembered: the model re-judges
            # these patterns after recovery.
            self._awaiting.pop((pending.system, pending.pattern), None)
            self._latency.observe(pending.gate_seconds + share)
            if report.is_anomalous:
                self._anomalies.inc()
            self._emit(dataclasses.replace(report, metadata={
                **report.metadata, "window_id": pending.window_id,
            }))
