"""The inference runtime engine: router + queues + shards + supervision.

:class:`InferenceRuntime` runs in one of two modes:

**Synchronous** (default) — ``submit`` / ``pump`` / ``drain`` on the
caller's thread.  Records are admitted to their shard's bounded queue and
``pump`` consumes them in *global submission order* (a k-way merge on the
sequence number across shard queues).  That ordering — together with the
scheduler's exact-``max_batch`` lane chunking, per-system pattern
libraries and a canonical end-of-stream drain order — makes the output a
pure function of the input stream: ``repro replay --shards N`` is
byte-identical for every N.  This mode backs
:class:`~repro.deploy.online.OnlineService` and ``repro replay``.

**Threaded** (``threaded=True`` / ``executor="thread"``) — ``start`` /
``stop``; one worker thread per shard consumes its own queue, so
simulated/remote inference latency overlaps across shards
(``repro serve``).  Determinism is traded for throughput: global
ordering is not enforced and per-shard metric names get a ``.shard<i>``
scope suffix so concurrent shards never race on one counter object.
These shard threads are the only ``threading.Thread`` constructions the
project permits (the ``direct-thread`` lint rule enforces this).

**Process** (``executor="process"``) — each shard runs in its own
worker process (:mod:`repro.runtime.procexec`), warmed through a
one-time shared-memory weight broadcast.  Unlike threads this overlaps
*CPU-bound* scoring past the GIL, and unlike the threaded mode it keeps
the deterministic-output contract: replay output is byte-identical to
sync mode (see the procexec module docstring for the argument).  Live
workers are constructed from a picklable :class:`ProcessWorkerSpec`
rather than ``worker_factory``.

Backpressure is explicit: the queue's ``block`` policy never sheds (the
synchronous engine pumps inline to make room; threaded producers wait),
while ``reject`` / ``drop-oldest`` shed and count through
``<prefix>.records_rejected`` / ``<prefix>.records_dropped``.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..core.report import AnomalyReport
from ..obs import MetricsRegistry, get_registry
from .queues import OFFER_DROPPED, OFFER_FULL, OFFER_OK, OFFER_REJECTED, ShardQueue
from .router import ShardRouter
from .shard import ShardState
from .supervisor import WorkerSupervisor
from .worker import EnsembleWorker, InferenceWorker, ModelWorker, message_pattern

__all__ = ["InferenceRuntime", "RuntimeStats"]


class RuntimeStats:
    """Read-view over an engine's registry counters.

    Sums the flat name and any ``.shard<i>``-scoped variants, so one
    accessor works for both synchronous and threaded engines.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str = "runtime"):
        self.registry = registry
        self.prefix = prefix

    def _sum(self, stem: str) -> float:
        flat = f"{self.prefix}.{stem}"
        scoped = f"{flat}.shard"
        total = 0.0
        for name, metric in self.registry.metrics().items():
            if name == flat or name.startswith(scoped):
                total += metric.value
        return total

    @property
    def windows_seen(self) -> int:
        return int(self._sum("windows_seen"))

    @property
    def model_invocations(self) -> int:
        return int(self._sum("model_invocations"))

    @property
    def library_hits(self) -> int:
        return int(self._sum("library_hits"))

    @property
    def anomalies_raised(self) -> int:
        return int(self._sum("anomalies_raised"))

    @property
    def degraded_windows(self) -> int:
        return int(self._sum("degraded_windows"))

    @property
    def batches(self) -> int:
        return int(self._sum("batches"))

    @property
    def records_rejected(self) -> int:
        return int(self._sum("records_rejected"))

    @property
    def records_dropped(self) -> int:
        return int(self._sum("records_dropped"))

    @property
    def worker_failures(self) -> int:
        return int(self._sum("worker_failures"))

    @property
    def unhealthy_transitions(self) -> int:
        return int(self._sum("unhealthy_transitions"))

    @property
    def worker_recoveries(self) -> int:
        return int(self._sum("worker_recoveries"))

    @property
    def model_skip_rate(self) -> float:
        """Fraction of windows answered without a model invocation."""
        seen = self.windows_seen
        if seen == 0:
            return 0.0
        return 1.0 - self.model_invocations / seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RuntimeStats(windows_seen={self.windows_seen}, "
                f"model_invocations={self.model_invocations}, "
                f"degraded_windows={self.degraded_windows})")


class InferenceRuntime:
    """Sharded micro-batching front-end over inference workers."""

    def __init__(self,
                 worker_factory: Callable[[int], InferenceWorker] | None, *,
                 pattern_fn: Callable[[list], tuple[int, ...]],
                 normalize: Callable | None = None,
                 shards: int = 1, window: int = 10, step: int = 5,
                 max_batch: int = 16, max_latency: float | None = None,
                 queue_capacity: int = 10_000, backpressure: str = "block",
                 threaded: bool = False, poll_interval: float = 0.05,
                 executor: str | None = None, process_spec=None,
                 respawn_policy=None,
                 supervisor_options: dict | None = None,
                 fallback_threshold: float = 0.5,
                 max_patterns: int = 100_000,
                 registry: MetricsRegistry | None = None,
                 prefix: str = "runtime", spans: bool | None = None,
                 on_report: Callable[[AnomalyReport], None] | None = None,
                 gate: bool = True):
        if executor is None:
            executor = "thread" if threaded else "sync"
        if executor not in ("sync", "thread", "process"):
            raise ValueError(f"unknown executor {executor!r}; "
                             "expected sync|thread|process")
        if threaded and executor != "thread":
            raise ValueError(
                f"threaded=True conflicts with executor={executor!r}")
        threaded = executor == "thread"
        if executor == "process":
            if process_spec is None:
                raise ValueError(
                    "executor='process' requires a process_spec "
                    "(see ProcessWorkerSpec / from_model)")
            if backpressure != "block":
                raise ValueError(
                    "the process executor supports only the 'block' "
                    f"backpressure policy, got {backpressure!r}")
            if normalize is not None:
                raise ValueError(
                    "the process executor requires the default normalize "
                    "(worker processes rebuild it from LogFormatter)")
        elif worker_factory is None:
            raise ValueError(f"executor={executor!r} requires worker_factory")
        if registry is None:
            active = get_registry()
            # Stats must stay readable with observability off, so fall
            # back to a private registry rather than the no-op one.
            registry = active if active.enabled else MetricsRegistry()
        if normalize is None:
            # Submodule import keeps this cycle-safe: repro.deploy's
            # package __init__ builds on this engine.
            from ..deploy.formatter import LogFormatter
            normalize = LogFormatter._normalize
        self.router = ShardRouter(shards)
        self.threaded = threaded
        self.executor = executor
        self.registry = registry
        self.prefix = prefix
        self.poll_interval = poll_interval
        self.stats = RuntimeStats(registry, prefix)
        self._clock = registry.clock
        self._on_report = on_report
        self._reports: list[AnomalyReport] = []
        self._report_lock = threading.Lock()
        self._seq = 0
        self._started = False
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        # (pipeline, lock) for in-process weight swaps; wired by
        # from_model for the sync/threaded paths (process mode swaps
        # through the executor's re-broadcast instead).
        self._serving: tuple | None = None
        self.shard_errors: list[BaseException] = []
        # Tracer spans are stack-based and not thread-safe; default them
        # on only for synchronous engines.
        spans = (not threaded) if spans is None else spans
        options = dict(supervisor_options or {})
        options.setdefault("clock", registry.clock)
        self.queues: list[ShardQueue] = []
        self.shards: list[ShardState] = []
        self._depth_gauges = []
        self._process = None
        if executor == "process":
            # Submodule import keeps multiprocessing machinery out of the
            # sync/threaded paths entirely.
            from .procexec import ProcessShardExecutor

            self._process = ProcessShardExecutor(
                process_spec, shards=shards,
                pattern_fn=pattern_fn, normalize=normalize,
                emit=self._emit,
                window=window, step=step, max_batch=max_batch,
                max_latency=max_latency,
                supervisor_options=supervisor_options,
                fallback_threshold=fallback_threshold,
                max_patterns=max_patterns,
                registry=registry, prefix=prefix,
                poll_interval=poll_interval,
                respawn_policy=respawn_policy,
            )
            self._rejected = registry.counter(f"{prefix}.records_rejected")
            self._dropped = registry.counter(f"{prefix}.records_dropped")
            return
        for index in range(shards):
            scope = f".shard{index}" if threaded else ""
            supervisor = WorkerSupervisor(
                worker_factory(index), registry=registry,
                prefix=prefix, scope=scope, **options,
            )
            self.queues.append(ShardQueue(queue_capacity, policy=backpressure))
            self.shards.append(ShardState(
                index, supervisor,
                pattern_fn=pattern_fn, emit=self._emit, normalize=normalize,
                registry=registry, clock=registry.clock,
                window=window, step=step,
                max_batch=max_batch, max_latency=max_latency,
                fallback_threshold=fallback_threshold,
                max_patterns=max_patterns,
                prefix=prefix, scope=scope, spans=spans, gate=gate,
            ))
            self._depth_gauges.append(
                registry.gauge(f"{prefix}.queue_depth.shard{index}")
            )
        self._rejected = registry.counter(f"{prefix}.records_rejected")
        self._dropped = registry.counter(f"{prefix}.records_dropped")

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, **kwargs) -> "InferenceRuntime":
        """Build a runtime over a fitted LogSynergy model.

        Wires the featurizer-based window pattern (distinct event-id
        set, as the online service gates) and a :class:`ModelWorker`
        per shard.  In threaded mode one lock is shared by the pattern
        function and every worker, because both paths may ingest novel
        templates into the featurizer's store, which is not thread-safe.

        With ``executor="process"`` the pipeline is packed into a
        shared-memory weight broadcast and every shard process rebuilds
        its own warm replica — no lock, no sharing.  Pass ``llm_spec``
        (a provider spec string) to give replicas a live interpreter.
        """
        if model.model is None:
            raise ValueError("InferenceRuntime requires a fitted LogSynergy model")
        featurizer = model._featurizer(model.target_system)

        def raw_pattern(window: list) -> tuple[int, ...]:
            ids = {featurizer.event_id_of(entry.message) for entry in window}
            return tuple(sorted(ids))

        if kwargs.get("executor") == "process":
            from .procexec import ProcessWorkerSpec

            kwargs.setdefault("process_spec", ProcessWorkerSpec.for_pipeline(
                model, llm_spec=kwargs.pop("llm_spec", None)))
            return cls(None, pattern_fn=raw_pattern, **kwargs)
        if kwargs.get("threaded"):
            lock = threading.Lock()

            def pattern_fn(window: list) -> tuple[int, ...]:
                with lock:
                    return raw_pattern(window)
        else:
            lock = None
            pattern_fn = raw_pattern
        runtime = cls(lambda index: ModelWorker(model, lock=lock),
                      pattern_fn=pattern_fn, **kwargs)
        runtime._serving = (model, lock)
        return runtime

    @classmethod
    def from_ensemble(cls, ensemble, **kwargs) -> "InferenceRuntime":
        """Build a runtime over a :class:`repro.detectors.Ensemble`.

        The pattern gate is forced off: rate- and novelty-based members
        (EWMA, LOF) derive their verdicts from per-system rolling state,
        so memoizing a window pattern's first verdict would both starve
        the baselines and serve stale answers.  Every window reaches the
        ensemble; it runs its own memoization where sound (the rule
        member's per-line pattern library).  One ensemble instance is
        shared by all shards — per-system state plus system-sticky
        routing keeps replay byte-identical across shard counts, and in
        threaded mode one shared lock serializes the workers.
        """
        if kwargs.get("executor") == "process":
            # A live ensemble cannot be shipped to worker processes;
            # the spec-string path rebuilds one per child instead.
            raise ValueError(
                "from_ensemble cannot run under executor='process'; build "
                "the runtime with process_spec=ProcessWorkerSpec.ensemble("
                "detectors_spec, ...) so each worker process rebuilds its "
                "own ensemble")
        kwargs["gate"] = False
        lock = threading.Lock() if kwargs.get("threaded") else None
        return cls(lambda index: EnsembleWorker(ensemble, lock=lock),
                   pattern_fn=message_pattern, **kwargs)

    # ------------------------------------------------------------------
    def swap_weights(self, state: dict) -> None:
        """Promote candidate model weights into the serving path live.

        ``state`` is a :meth:`~repro.nn.module.Module.state_dict` for
        the served :class:`~repro.core.model.LogSynergyModel`.  Process
        mode rebuilds the shared-memory broadcast and swaps every shard
        process; the in-process modes load the state into the served
        pipeline's model — under the shared worker lock when threaded,
        so a swap never interleaves with a scoring pass.
        """
        if self._process is not None:
            self._process.swap_weights(state)
        elif self._serving is not None:
            pipeline, lock = self._serving
            if lock is None:
                pipeline.model.load_state_dict(state)
            else:
                with lock:
                    pipeline.model.load_state_dict(state)
        else:
            raise RuntimeError(
                "swap_weights requires a runtime built with from_model "
                "(or a process-executor model spec)")
        self.registry.counter(f"{self.prefix}.weight_swaps").inc()

    # ------------------------------------------------------------------
    def _emit(self, report: AnomalyReport) -> None:
        with self._report_lock:
            self._reports.append(report)
        if self._on_report is not None:
            self._on_report(report)

    def take_reports(self) -> list[AnomalyReport]:
        """Pop every report emitted since the last call."""
        with self._report_lock:
            reports = self._reports
            self._reports = []
        return reports

    def queue_depths(self) -> list[int]:
        if self._process is not None:
            return self._process.queue_depths()
        return [len(queue) for queue in self.queues]

    def pending_windows(self) -> int:
        return sum(shard.pending_windows() for shard in self.shards)

    # -- synchronous mode ----------------------------------------------
    def submit(self, record) -> str:
        """Route one record to its shard queue; returns the admission
        outcome (one of the ``OFFER_*`` constants)."""
        index = self.router.shard_of(record.system)
        if self._process is not None:
            # The process executor journals every envelope (its crash
            # recovery refeeds it), so admission never sheds: block is
            # the only supported policy and blocking happens at the
            # bounded IPC flush, not here.
            self._seq += 1
            self._process.submit(index, self._seq, record)
            return OFFER_OK
        queue = self.queues[index]
        self._seq += 1
        item = (self._seq, record)
        if self.threaded:
            outcome = queue.offer(item) if queue.policy == "block" \
                else queue.try_offer(item)
        else:
            outcome = queue.try_offer(item)
            if outcome == OFFER_FULL:
                # block policy, queue full: the producer *is* the
                # consumer here, so make room by pumping inline.
                self.pump()
                outcome = queue.try_offer(item)
        if outcome == OFFER_REJECTED:
            self._rejected.inc()
        elif outcome == OFFER_DROPPED:
            self._dropped.inc()
        self._depth_gauges[index].set(len(queue))
        return outcome

    def pump(self) -> None:
        """Consume every queued record in global submission order.

        The k-way merge on sequence numbers reproduces exactly the order
        ``submit`` saw, whatever the shard count — the keystone of
        deterministic replay.  Full batches flush inline as lanes fill.
        """
        if self.threaded or self._process is not None:
            raise RuntimeError("pump() is for synchronous mode; "
                               "threaded/process runtimes consume via "
                               "start()/stop() or drain()")
        while True:
            best_index = -1
            best_seq = None
            for index, queue in enumerate(self.queues):
                head = queue.peek()
                if head is not None and (best_seq is None or head[0] < best_seq):
                    best_seq = head[0]
                    best_index = index
            if best_index < 0:
                return
            (_seq, record), = self.queues[best_index].poll(1)
            shard = self.shards[best_index]
            shard.ingest(record)
            shard.flush_ready(self._clock())
            self._depth_gauges[best_index].set(len(self.queues[best_index]))

    def drain(self) -> list[AnomalyReport]:
        """Pump what is queued, flush every residual batch, and return
        the reports emitted since the last ``take_reports``.

        Residual (partial) batches flush in one canonical order — lanes
        sorted by system name across all shards — so end-of-stream
        output is shard-count independent too.
        """
        if self._process is not None:
            # Full cross-process barrier; reports come back in canonical
            # replay order so callers see a deterministic sequence.
            from .replay import report_sort_key

            self._process.drain()
            reports = self.take_reports()
            reports.sort(key=report_sort_key)
            return reports
        self.pump()
        residual: list[tuple[str, int, list]] = []
        for shard in self.shards:
            for system, batch in shard.drain_batches():
                residual.append((system, shard.index, batch))
        residual.sort(key=lambda entry: entry[0])
        for _system, index, batch in residual:
            self.shards[index].score_batch(batch)
        return self.take_reports()

    # -- threaded / process mode ---------------------------------------
    def start(self) -> None:
        """Spawn the shard consumers (threaded or process mode)."""
        if self._process is not None:
            self._process.ensure_started()
            self._started = True
            return
        if not self.threaded:
            raise RuntimeError("start() requires threaded=True")
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        self._stop.clear()
        # The one sanctioned construction site for threads in this
        # project — everything else must go through this runtime.
        self._threads = [
            threading.Thread(target=self._shard_loop, args=(index,),
                             name=f"repro-shard-{index}", daemon=True)
            for index in range(len(self.shards))
        ]
        for thread in self._threads:
            thread.start()

    def _shard_loop(self, index: int) -> None:
        queue = self.queues[index]
        shard = self.shards[index]
        gauge = self._depth_gauges[index]
        try:
            while True:
                items = queue.poll_wait(shard.scheduler.max_batch * 4,
                                        timeout=self.poll_interval)
                for _seq, record in items:
                    shard.ingest(record)
                shard.flush_ready(self._clock())
                gauge.set(len(queue))
                if self._stop.is_set() and not len(queue):
                    break
            for _system, batch in shard.drain_batches():
                shard.score_batch(batch)
        except Exception as exc:  # lint: disable=blanket-except
            # A dying shard thread must leave a trace for stop() to
            # surface instead of hanging the whole runtime silently.
            self.shard_errors.append(exc)

    def stop(self, timeout: float | None = 30.0) -> list[AnomalyReport]:
        """Signal shards to finish, join them, and return the reports."""
        if self._process is not None:
            from .replay import report_sort_key

            self._process.stop(timeout)
            self._started = False
            reports = self.take_reports()
            reports.sort(key=report_sort_key)
            return reports
        if not self._started:
            return self.take_reports()
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._started = False
        if self.shard_errors:
            raise RuntimeError(
                f"{len(self.shard_errors)} shard thread(s) failed"
            ) from self.shard_errors[0]
        return self.take_reports()
