"""Deterministic replay: re-run a captured stream, shard-count invariant.

``repro replay`` exists to make the sharding claim falsifiable: the same
records through ``--shards 1`` and ``--shards 4`` must render to the same
bytes.  The pieces that guarantee it are the synchronous engine's
global-order pump, exact-``max_batch`` lane chunking, per-system pattern
libraries, and — here — disabling the latency trigger (wall-clock flush
times are the one thing that cannot be reproduced) plus a canonical
report ordering by window id.
"""

from __future__ import annotations

import json

from ..core.report import AnomalyReport
from .engine import InferenceRuntime

__all__ = ["replay_records", "render_reports", "report_sort_key"]


def report_sort_key(report: AnomalyReport) -> tuple[str, int]:
    """Canonical report order: (system, per-system window ordinal)."""
    window_id = str(report.metadata.get("window_id", ""))
    system, _, ordinal = window_id.rpartition(":")
    return (system or report.system, int(ordinal) if ordinal.isdigit() else -1)


def render_reports(reports: list[AnomalyReport]) -> str:
    """Render reports as canonical JSONL (sorted, fixed key order).

    Every field is a pure function of window content, so two replays
    that detected the same anomalies produce identical bytes.
    """
    lines = []
    for report in sorted(reports, key=report_sort_key):
        lines.append(json.dumps({
            "window_id": report.metadata.get("window_id"),
            "system": report.system,
            "score": report.score,
            "threshold": report.threshold,
            "anomalous": report.is_anomalous,
            "degraded": bool(report.metadata.get("degraded", False)),
        }, sort_keys=True))
    return "".join(line + "\n" for line in lines)


def replay_records(model, records: list, *, shards: int = 1,
                   max_batch: int = 16, window: int = 10, step: int = 5,
                   registry=None,
                   ) -> tuple[list[AnomalyReport], InferenceRuntime]:
    """Replay records through a synchronous sharded runtime.

    Returns the emitted reports in canonical order plus the runtime, so
    callers can inspect stats and metrics after the fact.  The latency
    trigger is disabled (``max_latency=None``): batches flush only on
    size and at end-of-stream, the deterministic triggers.
    """
    runtime = InferenceRuntime.from_model(
        model, shards=shards, window=window, step=step,
        max_batch=max_batch, max_latency=None,
        backpressure="block", registry=registry,
    )
    for record in records:
        runtime.submit(record)
    reports = runtime.drain()
    reports.sort(key=report_sort_key)
    return reports, runtime
