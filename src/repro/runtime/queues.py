"""Bounded shard ingress queues with explicit backpressure policies.

A :class:`ShardQueue` is the admission point of one shard.  Overflow
behaviour is a named policy, never a silent default:

* ``block`` — the producer must wait (threaded mode) or pump the shard
  inline (synchronous mode); nothing is ever lost.  ``try_offer`` reports
  ``OFFER_FULL`` and the caller decides how to make room.
* ``reject`` — the new record is shed and counted.
* ``drop-oldest`` — the oldest queued record is evicted to admit the new
  one (bounded staleness, favoured for live monitoring feeds).

The queue is thread-safe; the synchronous engine simply never contends on
it.  Shed records are counted both on the instance and through the
``repro.obs`` registry counters the owning engine wires in.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from ..testing.faultpoints import DROPPED, fault_point

T = TypeVar("T")

__all__ = [
    "BACKPRESSURE_POLICIES", "OFFER_OK", "OFFER_REJECTED", "OFFER_DROPPED",
    "OFFER_FULL", "RecordEnvelope", "ShardQueue",
]


@dataclass(frozen=True, slots=True)
class RecordEnvelope:
    """One sequenced record, as shipped across an executor boundary.

    The synchronous and threaded engines pass plain ``(seq, record)``
    tuples; the process executor needs a stable, picklable shape for its
    IPC queues and its per-shard replay journal — the ``seq`` assigned
    by ``InferenceRuntime.submit`` is what makes a respawned worker's
    refeed reproduce the exact admission order.
    """

    seq: int
    record: object

BACKPRESSURE_POLICIES = ("block", "reject", "drop-oldest")

OFFER_OK = "ok"
OFFER_REJECTED = "rejected"
OFFER_DROPPED = "dropped-oldest"
OFFER_FULL = "full"


class ShardQueue(Generic[T]):
    """Bounded FIFO with a named overflow policy and shed accounting."""

    def __init__(self, capacity: int, policy: str = "block"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {', '.join(BACKPRESSURE_POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self.total_offered = 0
        self.total_rejected = 0
        self.total_dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def is_full(self) -> bool:
        with self._lock:
            return len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    def _admit_locked(self, item: T) -> str:
        """Apply the overflow policy; caller holds the lock."""
        if fault_point("runtime.queues.admit", item) is DROPPED:
            # Injected silent ingress loss: the producer sees OFFER_OK but
            # the record never lands (what the invariants must catch).
            self.total_offered += 1
            return OFFER_OK
        self.total_offered += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            self._not_empty.notify()
            return OFFER_OK
        if self.policy == "reject":
            self.total_rejected += 1
            return OFFER_REJECTED
        if self.policy == "drop-oldest":
            self._items.popleft()
            self.total_dropped += 1
            self._items.append(item)
            self._not_empty.notify()
            return OFFER_DROPPED
        # block: the caller must free space (pump inline or wait).
        self.total_offered -= 1
        return OFFER_FULL

    def try_offer(self, item: T) -> str:
        """Non-blocking admit; under ``block`` a full queue returns
        :data:`OFFER_FULL` so the caller can drain and retry."""
        with self._lock:
            return self._admit_locked(item)

    def offer(self, item: T, timeout: float | None = None) -> str:
        """Admit, waiting for space under the ``block`` policy.

        Returns the admission outcome; :data:`OFFER_FULL` only when a
        ``block`` wait timed out.
        """
        with self._not_full:
            outcome = self._admit_locked(item)
            while outcome == OFFER_FULL:
                if not self._not_full.wait(timeout=timeout):
                    return OFFER_FULL
                outcome = self._admit_locked(item)
            return outcome

    # ------------------------------------------------------------------
    def peek(self) -> T | None:
        """The head item without removing it (``None`` when empty).

        Only meaningful under a single consumer — the synchronous engine
        uses it for its global-order merge across shard queues.
        """
        with self._lock:
            return self._items[0] if self._items else None

    def poll(self, max_items: int = 100) -> list[T]:
        """Dequeue up to ``max_items`` in FIFO order (never blocks)."""
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        with self._lock:
            batch: list[T] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            if batch:
                self._not_full.notify_all()
            return batch

    def poll_wait(self, max_items: int, timeout: float) -> list[T]:
        """Like :meth:`poll` but waits up to ``timeout`` for a first item."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout=timeout)
            batch: list[T] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            if batch:
                self._not_full.notify_all()
            return batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardQueue(depth={len(self)}/{self.capacity}, "
                f"policy={self.policy!r})")
