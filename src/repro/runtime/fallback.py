"""Graceful degradation: the pattern-library fast path as a scorer.

When a shard's model worker is unhealthy, windows the library already
knows are answered at the gate as usual; *novel* windows land here
instead of being dropped.  The heuristic is deliberately transparent: an
event id is considered alarming if every remembered pattern containing
it was judged anomalous; a novel window is flagged when it contains an
alarming id.  Verdicts produced this way are **never** written back to
the library — once the worker recovers, the model re-judges those
patterns from scratch.
"""

from __future__ import annotations

import dataclasses

from ..core.report import AnomalyReport, build_report
from .scheduler import PendingWindow

__all__ = ["PatternFallback"]


class PatternFallback:
    """Scores novel windows from remembered verdicts while degraded."""

    def __init__(self, library, threshold: float = 0.5):
        self.library = library
        self.threshold = threshold
        self._alarming: frozenset[int] = frozenset()
        self._built_from = -1

    def _alarming_ids(self) -> frozenset[int]:
        """Ids seen only in anomalous remembered patterns (cached)."""
        if len(self.library) != self._built_from:
            anomalous: set[int] = set()
            normal: set[int] = set()
            for pattern, verdict in self.library.snapshot().items():
                (anomalous if verdict else normal).update(pattern)
            self._alarming = frozenset(anomalous - normal)
            self._built_from = len(self.library)
        return self._alarming

    def score(self, pending: PendingWindow) -> AnomalyReport:
        """Degraded verdict for one novel window (marked in metadata)."""
        alarming = self._alarming_ids()
        hit = bool(alarming.intersection(pending.pattern))
        score = 1.0 if hit else 0.0
        messages = [entry.message for entry in pending.window]
        report = build_report(
            system=pending.system,
            score=score,
            threshold=self.threshold,
            messages=messages,
            interpretations=messages,
            timestamps=[entry.timestamp for entry in pending.window],
        )
        return dataclasses.replace(
            report, metadata={**report.metadata, "degraded": True},
        )
