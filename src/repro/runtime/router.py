"""Shard routing: stable system-id hashing.

Partitioning by *system* (not round-robin) is what keeps sharding
invisible to detection results: all records of one system arrive at the
same shard in order, so windowing, pattern dedup and batch boundaries for
that system are identical whatever the shard count.  The hash is CRC32 —
stable across processes and Python versions, unlike the salted builtin
``hash``.
"""

from __future__ import annotations

import zlib

__all__ = ["ShardRouter"]


class ShardRouter:
    """Maps system ids onto ``[0, shards)`` deterministically."""

    def __init__(self, shards: int):
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = shards

    def shard_of(self, system: str) -> int:
        """The shard owning this system; stable across runs and processes."""
        return zlib.crc32(system.encode("utf-8")) % self.shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(shards={self.shards})"
