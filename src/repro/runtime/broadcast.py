"""One-time weight broadcast for the process executor.

A worker process must start *warm*: it needs the fitted model weights,
the per-system Drain trees, interpretations and event embeddings before
it scores its first batch.  Pickling all of that into every child's
spawn arguments would copy the (potentially large) float arrays once per
shard; instead the parent packs every array into **one shared-memory
arena** (:class:`WeightBroadcast`) and ships children a tiny picklable
:class:`BroadcastHandle` — segment name plus an offset/dtype/shape
manifest.  Children attach zero-copy read-only views; the one consumer
that must own mutable weights (:meth:`Module.load_state_dict`) copies
out of the view itself, so the arena can stay read-only for its whole
lifetime.

Non-array state (config, template stores, interpretations) is pickled
into the handle directly — it is small and irregular.  When shared
memory is unavailable (``use_shm=False``, import failure, or the
platform refusing the segment) the arrays degrade to an npz temp file
referenced by path: same handle shape, same attach API, just a copying
transport.

The parent owns the arena: :meth:`WeightBroadcast.unlink` removes the
``/dev/shm`` segment (or the npz file) at engine shutdown, and a
``weakref.finalize`` backstop does the same at garbage collection so a
crashed test run cannot leak segments.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import pickle
import tempfile
import weakref
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArenaEntry", "BroadcastHandle", "AttachedBroadcast", "WeightBroadcast",
    "pipeline_state", "restore_pipeline",
]

# Cache-line alignment for each array's slice of the arena.
_ALIGN = 64

# Deterministic-per-process segment naming (pid + counter), so tests can
# glob /dev/shm for leaks and two engines in one process never collide.
_SEGMENT_COUNTER = itertools.count()


def _segment_name() -> str:
    return f"repro-bcast-{os.getpid()}-{next(_SEGMENT_COUNTER)}"


@dataclass(frozen=True)
class ArenaEntry:
    """Location of one array inside the arena."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class BroadcastHandle:
    """The picklable attachment recipe a child process receives.

    Exactly one of ``segment`` (shared-memory name) and ``npz_path``
    (fallback file) is set; ``meta_blob`` carries the pickled non-array
    state either way.
    """

    segment: str | None
    npz_path: str | None
    entries: tuple[ArenaEntry, ...]
    meta_blob: bytes
    total_bytes: int


class AttachedBroadcast:
    """A child-side view of a broadcast: ``arrays`` + ``meta``.

    Keeps the underlying shared-memory mapping alive for as long as the
    views are in use; ``close`` drops the mapping (never the segment —
    only the parent unlinks).
    """

    def __init__(self, arrays: dict[str, np.ndarray], meta, shm=None):
        self.arrays = arrays
        self.meta = meta
        self._shm = shm

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None


def _open_shared_memory(name: str | None, size: int = 0):
    """Create (``name`` given) or attach shared memory; isolates the
    import so environments without ``multiprocessing.shared_memory``
    degrade to the npz fallback instead of failing at import time."""
    from multiprocessing import shared_memory

    if name is None:
        return shared_memory.SharedMemory(create=True, size=max(1, size),
                                          name=_segment_name())
    return shared_memory.SharedMemory(name=name)


class WeightBroadcast:
    """Parent-side owner of one packed arena of named arrays."""

    def __init__(self, arrays: dict[str, np.ndarray], meta, *,
                 use_shm: bool = True):
        self._entries: list[ArenaEntry] = []
        self._shm = None
        self._npz_path: str | None = None
        self._meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        normalized = {key: np.ascontiguousarray(value)
                      for key, value in sorted(arrays.items())}
        offset = 0
        for key, value in normalized.items():
            offset = -(-offset // _ALIGN) * _ALIGN  # round up to alignment
            self._entries.append(ArenaEntry(
                key=key, dtype=value.dtype.str, shape=tuple(value.shape),
                offset=offset, nbytes=value.nbytes,
            ))
            offset += value.nbytes
        self.total_bytes = offset
        if use_shm:
            try:
                self._shm = _open_shared_memory(None, size=self.total_bytes)
            except (ImportError, OSError):
                self._shm = None
        if self._shm is not None:
            view = self._shm.buf
            for entry, value in zip(self._entries, normalized.values()):
                target = np.ndarray(entry.shape, dtype=entry.dtype,
                                    buffer=view, offset=entry.offset)
                target[...] = value
        else:
            handle, path = tempfile.mkstemp(prefix="repro-bcast-",
                                            suffix=".npz")
            os.close(handle)
            self._npz_path = path
            # npz keys must be valid archive member names; arena keys may
            # contain '/', so store positionally and keep keys in entries.
            np.savez(path, **{f"a{i}": value
                              for i, value in enumerate(normalized.values())})
        self._finalizer = weakref.finalize(
            self, _cleanup, self._shm, self._npz_path)

    @property
    def via_shared_memory(self) -> bool:
        return self._shm is not None

    @property
    def segment_name(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    def handle(self) -> BroadcastHandle:
        """The picklable recipe children attach with."""
        return BroadcastHandle(
            segment=self.segment_name,
            npz_path=self._npz_path,
            entries=tuple(self._entries),
            meta_blob=self._meta_blob,
            total_bytes=self.total_bytes,
        )

    def unlink(self) -> None:
        """Release the arena (idempotent): close + unlink the segment,
        or delete the fallback npz file."""
        self._finalizer.detach()
        _cleanup(self._shm, self._npz_path)
        self._shm = None
        self._npz_path = None


def _cleanup(shm, npz_path: str | None) -> None:
    # Already-gone segments/files are fine: unlink is idempotent and the
    # finalizer backstop may run after an explicit unlink().
    if shm is not None:
        shm.close()
        with contextlib.suppress(FileNotFoundError):
            shm.unlink()
    if npz_path is not None:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(npz_path)


def attach(handle: BroadcastHandle) -> AttachedBroadcast:
    """Open a handle in this (child) process.

    Shared-memory handles yield zero-copy **read-only** views into the
    arena; npz handles load copies.  Either way ``meta`` is the
    unpickled non-array state.
    """
    meta = pickle.loads(handle.meta_blob)
    if handle.segment is not None:
        # Python 3.11 registers the segment with the resource tracker on
        # attach as well as create — but multiprocessing children share
        # the parent's tracker process, where re-registering a tracked
        # name is a no-op.  Unregistering here would strip the *parent's*
        # entry, so the tracker must be left alone on the attach side;
        # only WeightBroadcast.unlink releases the name.
        shm = _open_shared_memory(handle.segment)
        arrays: dict[str, np.ndarray] = {}
        for entry in handle.entries:
            view = np.ndarray(entry.shape, dtype=entry.dtype,
                              buffer=shm.buf, offset=entry.offset)
            view.flags.writeable = False
            arrays[entry.key] = view
        return AttachedBroadcast(arrays, meta, shm=shm)
    with np.load(handle.npz_path) as archive:
        arrays = {entry.key: archive[f"a{i}"]
                  for i, entry in enumerate(handle.entries)}
    return AttachedBroadcast(arrays, meta)


# ---------------------------------------------------------------------------
# LogSynergy pipeline packing: what `--model-dir` process mode broadcasts.
# ---------------------------------------------------------------------------

def pipeline_state(pipeline) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a fitted LogSynergy pipeline into (arrays, meta).

    Arrays are keyed ``model/<param>`` and ``feat/<system>/<event_id>``;
    meta mirrors the ``pipeline.json`` manifest of
    :meth:`~repro.core.pipeline.LogSynergy.save_pipeline` plus the
    per-featurizer metadata, so :func:`restore_pipeline` can rebuild a
    byte-equivalent replica without touching disk.
    """
    import dataclasses

    if pipeline.model is None:
        raise ValueError("weight broadcast requires a fitted LogSynergy model")
    arrays: dict[str, np.ndarray] = {}
    for key, value in pipeline.model.state_dict().items():
        arrays[f"model/{key}"] = value
    featurizer_meta: dict[str, dict] = {}
    for name, featurizer in pipeline._featurizers.items():
        meta, feat_arrays = featurizer.state()
        featurizer_meta[name] = meta
        for key, value in feat_arrays.items():
            arrays[f"feat/{name}/{key}"] = value
    meta = {
        "config": dataclasses.asdict(pipeline.config),
        "target_system": pipeline.target_system,
        "system_index": dict(pipeline._system_index),
        "num_systems": pipeline.model.num_systems,
        "featurizers": featurizer_meta,
    }
    return arrays, meta


def restore_pipeline(attached: AttachedBroadcast, llm=None):
    """Rebuild a warm LogSynergy replica from an attached broadcast.

    The inverse of :func:`pipeline_state`; mirrors
    :meth:`~repro.core.pipeline.LogSynergy.load_pipeline` but reads the
    arena instead of a directory.  Model weights are copied out of the
    read-only views by ``load_state_dict``; event embeddings stay
    zero-copy views (the featurizer never mutates them in place).
    """
    # Local imports: this module must stay importable without pulling the
    # full model stack in (the synthetic process path never needs it).
    from ..config import LogSynergyConfig
    from ..core.features import SystemFeaturizer
    from ..core.model import LogSynergyModel
    from ..core.pipeline import LogSynergy

    meta = attached.meta
    config = LogSynergyConfig(**meta["config"])
    pipeline = LogSynergy(config, llm=llm)
    pipeline.target_system = meta["target_system"]
    pipeline._system_index = dict(meta["system_index"])
    pipeline.model = LogSynergyModel(
        config, num_systems=meta["num_systems"],
        rng=np.random.default_rng(config.seed),
    )
    state = {key[len("model/"):]: value
             for key, value in attached.arrays.items()
             if key.startswith("model/")}
    pipeline.model.load_state_dict(state)
    for name, featurizer_meta in meta["featurizers"].items():
        prefix = f"feat/{name}/"
        feat_arrays = {key[len(prefix):]: value
                       for key, value in attached.arrays.items()
                       if key.startswith(prefix)}
        pipeline._featurizers[name] = SystemFeaturizer.from_state(
            featurizer_meta, feat_arrays, pipeline.encoder, pipeline.llm)
    # The zero-copy views stay backed by the attachment's mapping: if the
    # AttachedBroadcast were collected, SharedMemory.__del__ would unmap
    # the arena under them.  Pin it to the replica's lifetime.
    pipeline._broadcast_attachment = attached
    return pipeline
