"""Per-shard micro-batch scheduling under a size / latency budget.

Windows wait in per-system *lanes*.  A lane flushes when it holds
``max_batch`` windows, when its oldest window has waited ``max_latency``
seconds (injectable clock — the scheduler never reads wall time itself),
or unconditionally on ``drain``.

Batches are always consecutive ``max_batch``-sized chunks of one lane.
Because a lane's arrival order depends only on that system's stream —
never on which shard it runs on or when triggers fire — the sequence of
batches handed to the model is identical for any shard count.  That
chunk-boundary invariant is what makes ``repro replay --shards N``
byte-identical for every N (a lane flushed early by the latency trigger
still emits the same prefix chunks it would have emitted later).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PendingWindow", "MicroBatchScheduler"]


@dataclass
class PendingWindow:
    """One window awaiting model scoring.

    ``index`` is the per-system window ordinal (the stable window id is
    ``f"{system}:{index}"``); ``gate_seconds`` carries the pattern-gate
    latency so the per-window latency histogram can add the batch share
    when the window is finally scored.
    """

    system: str
    index: int
    window: list = field(default_factory=list)
    pattern: tuple = ()
    enqueued_at: float = 0.0
    gate_seconds: float = 0.0

    @property
    def window_id(self) -> str:
        return f"{self.system}:{self.index}"


class MicroBatchScheduler:
    """Accumulates :class:`PendingWindow`s and emits flush batches."""

    def __init__(self, max_batch: int = 16, max_latency: float | None = None):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_latency is not None and max_latency < 0:
            raise ValueError(f"max_latency must be >= 0, got {max_latency}")
        self.max_batch = max_batch
        self.max_latency = max_latency
        self._lanes: dict[str, list[PendingWindow]] = {}

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def add(self, pending: PendingWindow) -> None:
        """Queue one window in its system lane."""
        self._lanes.setdefault(pending.system, []).append(pending)

    def _pop_chunks(self, lane: list[PendingWindow],
                    include_partial: bool) -> list[list[PendingWindow]]:
        batches: list[list[PendingWindow]] = []
        while len(lane) >= self.max_batch:
            batches.append(lane[: self.max_batch])
            del lane[: self.max_batch]
        if include_partial and lane:
            batches.append(lane[:])
            lane.clear()
        return batches

    def ready_batches(self, now: float) -> list[list[PendingWindow]]:
        """Batches due under the size or latency trigger.

        Full ``max_batch`` chunks are always due.  When the latency
        budget of a lane's oldest window has expired, the lane's
        remainder flushes too (as a final partial chunk).
        """
        batches: list[list[PendingWindow]] = []
        for system in sorted(self._lanes):
            lane = self._lanes[system]
            if not lane:
                continue
            expired = (self.max_latency is not None
                       and now - lane[0].enqueued_at >= self.max_latency)
            batches.extend(self._pop_chunks(lane, include_partial=expired))
        return batches

    def drain(self) -> list[list[PendingWindow]]:
        """Flush everything, including partial lanes (end of stream)."""
        batches: list[list[PendingWindow]] = []
        for system in sorted(self._lanes):
            batches.extend(self._pop_chunks(self._lanes[system],
                                            include_partial=True))
        return batches

    def oldest_deadline(self) -> float | None:
        """Earliest instant any lane's latency budget expires (or None)."""
        if self.max_latency is None:
            return None
        heads = [lane[0].enqueued_at for lane in self._lanes.values() if lane]
        if not heads:
            return None
        return min(heads) + self.max_latency
