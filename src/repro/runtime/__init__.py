"""``repro.runtime`` — sharded micro-batching inference runtime.

The paper deploys LogSynergy as an online service over ISP log streams
(collector -> buffer -> detector -> alerting, §VI-A); this package is the
layer that lets that service approach production volume.  It sits between
``repro.deploy`` ingestion and the model's batch-first
``predict_proba``/``detect_stream_batch`` path:

* :class:`ShardRouter` — stable system-id hashing over N shards; a
  system's records always land on the same shard, so each shard owns its
  windowing state and results are independent of the shard count.
* :class:`ShardQueue` — bounded ingress queue per shard with explicit
  backpressure policies (``block`` / ``reject`` / ``drop-oldest``) and
  load-shedding counters.
* :class:`MicroBatchScheduler` — accumulates windows per system lane and
  flushes them under a max-batch-size / max-latency budget (injectable
  clock).  Lanes are chunked at exactly ``max_batch`` so batch
  boundaries — and therefore model outputs — are byte-identical for any
  shard count.
* :class:`WorkerSupervisor` — timeout accounting, bounded retry with
  backoff, and a health state machine.  While a shard's model worker is
  unhealthy its traffic falls back to the :class:`PatternFallback`
  known-pattern fast path instead of dropping detections.
* :class:`InferenceRuntime` — the engine tying it together, with a
  deterministic synchronous mode (``submit``/``pump``/``drain``, used by
  ``repro replay``) and a threaded mode (``start``/``stop``, used by
  ``repro serve``) whose shard workers are the only threads this project
  is allowed to construct (see the ``direct-thread`` lint rule).
* :class:`ProcessShardExecutor` / :class:`ProcessWorkerSpec` — the
  ``executor="process"`` mode: one worker process per shard, warmed by a
  one-time shared-memory :class:`WeightBroadcast` of the model arrays,
  supervised with journal-refeed crash recovery, and deduplicated on
  window id so replay output stays byte-identical to sync mode.  These
  (with ``broadcast``) are the only ``multiprocessing`` constructions
  the project permits (see the ``direct-process`` lint rule).

Every stage reports through ``repro.obs``: queue-depth gauges,
batch-size/latency histograms, shed/degraded counters and per-shard
flush spans.
"""

from .broadcast import (
    AttachedBroadcast,
    BroadcastHandle,
    WeightBroadcast,
    attach,
    pipeline_state,
    restore_pipeline,
)
from .engine import InferenceRuntime, RuntimeStats
from .fallback import PatternFallback
from .procexec import ProcessShardExecutor, ProcessWorkerSpec
from .queues import (
    OFFER_DROPPED,
    OFFER_FULL,
    OFFER_OK,
    OFFER_REJECTED,
    RecordEnvelope,
    ShardQueue,
)
from .replay import render_reports, replay_records, report_sort_key
from .router import ShardRouter
from .scheduler import MicroBatchScheduler, PendingWindow
from .supervisor import RespawnPolicy, WorkerSupervisor
from .worker import (
    EnsembleWorker,
    FlakyWorker,
    ModelWorker,
    SyntheticWorker,
    WorkerError,
    build_worker_from_spec,
    message_pattern,
    resolve_cost,
)

__all__ = [
    "InferenceRuntime", "RuntimeStats",
    "ShardRouter",
    "ShardQueue", "OFFER_OK", "OFFER_REJECTED", "OFFER_DROPPED", "OFFER_FULL",
    "RecordEnvelope",
    "MicroBatchScheduler", "PendingWindow",
    "WorkerSupervisor", "RespawnPolicy", "WorkerError",
    "ModelWorker", "SyntheticWorker", "EnsembleWorker", "FlakyWorker", "message_pattern",
    "build_worker_from_spec", "resolve_cost",
    "ProcessShardExecutor", "ProcessWorkerSpec",
    "WeightBroadcast", "BroadcastHandle", "AttachedBroadcast", "attach",
    "pipeline_state", "restore_pipeline",
    "PatternFallback",
    "replay_records", "render_reports", "report_sort_key",
]
