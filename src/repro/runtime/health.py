"""Reusable unhealthy/cooldown health state machine.

Extracted from :class:`~repro.runtime.supervisor.WorkerSupervisor` so
other degradation points can share the exact same semantics — most
notably the LLM circuit breaker in :mod:`repro.llm.middleware`, which
must open, probe and close the way a supervised worker does:

* **closed/healthy** — consecutive failures accumulate in a streak;
  ``unhealthy_after`` of them trip the breaker.
* **open/unhealthy** — callers get an immediate "degraded" answer until
  ``cooldown`` seconds (by the injected clock) have elapsed.
* **half-open probe** — the first call after the cooldown is a probe:
  success closes the breaker, failure doubles the cooldown (capped at
  ``backoff_cap``, 16x by default).

The monitor is pure bookkeeping: it never reads a clock on its own
(every transition takes ``now`` from the caller) and never counts
metrics — hosts own their counters so supervisor and breaker keep their
distinct ``repro.obs`` vocabularies.  Kept dependency-free (stdlib only)
for the same reason :mod:`repro.testing.faultpoints` is: it is imported
from low-level modules on both the runtime and LLM sides.
"""

from __future__ import annotations

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Failure-streak / cooldown / probe state shared by degradation points."""

    def __init__(self, *, unhealthy_after: int = 3, cooldown: float = 1.0,
                 backoff_cap: int = 16):
        if unhealthy_after <= 0:
            raise ValueError(f"unhealthy_after must be positive, got {unhealthy_after}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown}")
        if backoff_cap < 1:
            raise ValueError(f"backoff_cap must be >= 1, got {backoff_cap}")
        self.unhealthy_after = unhealthy_after
        self.cooldown = cooldown
        self.backoff_cap = backoff_cap
        self.healthy = True
        self.bad_streak = 0
        self.probe_failures = 0
        self.retry_at = 0.0

    # -- closed-state transitions ---------------------------------------
    def record_good(self) -> None:
        """A successful unit of work while healthy: reset the streak."""
        self.bad_streak = 0

    def record_bad(self, now: float) -> bool:
        """A failed/overrun unit of work while healthy.

        Returns ``True`` when this failure trips the unhealthy
        transition (the caller counts the transition exactly once).
        """
        self.bad_streak += 1
        if self.healthy and self.bad_streak >= self.unhealthy_after:
            self._trip(now, self.cooldown)
            return True
        return False

    def force_unhealthy(self, now: float, cooldown: float | None = None) -> bool:
        """Operator override / fault injection: degrade immediately.

        Returns ``True`` when this call performed the healthy->unhealthy
        transition (``False`` if already unhealthy — the cooldown is
        still re-armed either way).
        """
        transitioned = self.healthy
        self._trip(now, self.cooldown if cooldown is None else cooldown)
        return transitioned

    def _trip(self, now: float, cooldown: float) -> None:
        self.healthy = False
        self.probe_failures = 0
        self.retry_at = now + cooldown

    # -- open-state / probe transitions ---------------------------------
    def ready_to_probe(self, now: float) -> bool:
        """Whether the cooldown elapsed and the next call may probe."""
        return not self.healthy and now >= self.retry_at

    def probe_succeeded(self) -> None:
        """Half-open probe came back clean: close (restore health)."""
        self.healthy = True
        self.bad_streak = 0
        self.probe_failures = 0

    def probe_failed(self, now: float) -> None:
        """Half-open probe failed: stay open, back the cooldown off."""
        self.probe_failures += 1
        backoff = self.cooldown * min(2 ** self.probe_failures, self.backoff_cap)
        self.retry_at = now + backoff
