"""Baseline shoot-out on one target system (a mini Table IV).

Runs LogSynergy against a representative subset of the paper's baselines
on the same continuous splits and prints a P/R/F1 comparison — the
fastest way to see the cross-system story on your own machine.

Run:  python examples/compare_baselines.py            (4 fast baselines)
      python examples/compare_baselines.py --all      (all ten)
"""

import sys

from repro import LogSynergyConfig
from repro.baselines import baseline_names
from repro.evaluation import CrossSystemExperiment, format_results_table

FAST_SUBSET = ["DeepLog", "LogRobust", "LogTransfer", "MetaLog"]

CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=2, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=12, batch_size=64, learning_rate=5e-4,
)

BASELINE_KWARGS = {
    "DeepLog": dict(epochs=3, hidden_size=32, num_layers=1),
    "LogAnomaly": dict(epochs=3, hidden_size=32, num_layers=1),
    "PLELog": dict(epochs=3, hidden_size=25),
    "SpikeLog": dict(epochs=3, hidden_size=32),
    "NeuralLog": dict(epochs=3, d_model=32, num_layers=1, d_ff=64),
    "LogRobust": dict(epochs=3, hidden_size=32, num_layers=1),
    "PreLog": dict(pretrain_epochs=3, tune_epochs=3, d_model=32, d_ff=64),
    "LogTAD": dict(epochs=3, hidden_size=32, num_layers=1),
    "LogTransfer": dict(source_epochs=3, target_epochs=3, hidden_size=32, num_layers=1),
    "MetaLog": dict(meta_episodes=10, adapt_steps=8, hidden_size=25, num_layers=1),
}


def main() -> None:
    methods = baseline_names() if "--all" in sys.argv else FAST_SUBSET
    print(f"Comparing LogSynergy vs {len(methods)} baseline(s) "
          "on target=Thunderbird (sources: BGL, Spirit)\n")

    experiment = CrossSystemExperiment(
        "thunderbird", ["bgl", "spirit"], scale=0.006,
        n_source=1000, n_target=100, max_test=800, seed=0,
    )
    experiment.prepare()
    print(f"  target train: {len(experiment.target_train)} sequences "
          f"({sum(s.label for s in experiment.target_train)} anomalous)")
    print(f"  target test : {len(experiment.target_test)} sequences "
          f"({int(experiment.test_labels.sum())} anomalous)\n")

    results = []
    for name in methods:
        print(f"  training {name} ...")
        results.append(experiment.run_baseline(name, **BASELINE_KWARGS[name]))
    print("  training LogSynergy ...")
    results.append(experiment.run_logsynergy(CONFIG))

    outcome = experiment.run([])
    outcome.results = results
    print()
    print(format_results_table([outcome], methods + ["LogSynergy"],
                               title="Mini Table IV (one target)"))
    print("\nTiming (train seconds):")
    for result in results:
        print(f"  {result.method:12s} {result.train_seconds:6.1f}s")


if __name__ == "__main__":
    main()
