"""Production deployment scenario (§VI): the full online workflow.

Simulates what the paper's ISP runs in production:

  Filebeat-like collection -> Kafka-like buffering -> LogStash-like
  formatting -> pattern-library-gated detection -> SMS + email alerting.

A LogSynergy model is trained offline for a newly deployed CDMS-style
system, then an online service consumes a live log stream, answering
repeated patterns from the library and invoking the model only for novel
ones.

Run:  python examples/production_pipeline.py
"""

from repro import LogSynergy, LogSynergyConfig
from repro.deploy import AlertRouter, EmailSink, OnlineService, SmsSink, deployment_speedup
from repro.evaluation import continuous_target_split, source_training_slice
from repro.logs import LogGenerator, build_dataset


def train_offline() -> LogSynergy:
    """Offline phase: transfer from two mature CDMS systems to system_c."""
    print("== Offline phase: training the detector for the new system ==")
    datasets = {
        name: build_dataset(name, scale=0.05, seed=index)
        for index, name in enumerate(["system_a", "system_b", "system_c"])
    }
    sources = {
        name: source_training_slice(datasets[name].sequences, 1500)
        for name in ("system_a", "system_b")
    }
    split = continuous_target_split(datasets["system_c"].sequences, 120)
    config = LogSynergyConfig(
        d_model=32, num_heads=4, num_layers=2, d_ff=64, feature_dim=16,
        embedding_dim=64, epochs=8, batch_size=64, learning_rate=3e-4,
    )
    model = LogSynergy(config)
    model.fit(sources, "system_c", split.train)
    print(f"  trained on {sum(len(s) for s in sources.values())} source + "
          f"{len(split.train)} target sequences\n")
    return model


def run_online(model: LogSynergy) -> None:
    """Online phase: stream consumption, gated detection, alerting."""
    print("== Online phase: consuming the live stream ==")
    sms, email = SmsSink(), EmailSink()
    service = OnlineService(model, router=AlertRouter([sms, email]))

    # A production-shaped stream: heavy template repetition plus fault bursts.
    stream = LogGenerator("system_c", seed=99, repeat_probability=0.9).generate(8000)
    for start in range(0, len(stream), 2000):  # arrives in batches
        batch = stream[start : start + 2000]
        reports = service.process(batch)
        print(f"  batch {start // 2000 + 1}: {len(batch)} lines, "
              f"{len(reports)} alert(s)")

    stats = service.stats
    print("\nPipeline statistics:")
    print(f"  windows inspected      : {stats.windows_seen}")
    print(f"  model invocations      : {stats.model_invocations}")
    print(f"  pattern-library skips  : {stats.model_skip_rate:.1%}")
    print(f"  library size           : {len(service.library)} patterns "
          f"({service.library.known_anomalous_patterns()} anomalous)")
    print(f"  alerts raised          : {stats.anomalies_raised}")

    if sms.delivered:
        print("\nLatest SMS alert:")
        print(f"  {sms.delivered[-1]}")
        print("\nMatching email body (truncated):")
        print("  " + "\n  ".join(email.delivered[-1].splitlines()[:6]))


def show_deployment_economics() -> None:
    """§VI-C1: deployment effort vs the rule-based status quo."""
    print("\n== Deployment economics (Section VI-C1) ==")
    comparison = deployment_speedup()
    print(f"  rule-based rollout : {comparison['rule_based_hours']:,.0f} engineer-hours")
    print(f"  LogSynergy rollout : {comparison['logsynergy_hours']:,.1f} hours")
    print(f"  reduction          : {comparison['reduction']:.1%} (paper: >90 %)")


def main() -> None:
    model = train_offline()
    run_online(model)
    show_deployment_economics()


if __name__ == "__main__":
    main()
