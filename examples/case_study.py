"""Case study (§VI-D): anatomy of a cross-system false positive.

The paper dissects a LogTransfer false positive: a *normal* System A
window whose raw words look like an *anomalous* System C training sample,
so word-level representations (Word2Vec/GloVe) confuse them.  LogSynergy's
LEI interpretations strip the misleading surface similarity.

This script reproduces the analysis quantitatively:

 1. train LogSynergy with System C as a mature source and System A as the
    new target;
 2. pick a normal target window and find its nearest training windows in
    feature space (the "closest match in System C" step);
 3. compare raw-text vs LEI-interpretation similarity between the window
    and its nearest anomalous source window;
 4. explain a flagged window event-by-event with occlusion attribution.

Run:  python examples/case_study.py
"""

import numpy as np

from repro import LogSynergy, LogSynergyConfig
from repro.core.explain import explain_window, nearest_training_sequences
from repro.embedding import load_pretrained_encoder
from repro.evaluation import continuous_target_split, source_training_slice
from repro.logs import build_dataset


def main() -> None:
    print("== Setup: System C (mature) -> System A (new) ==")
    datasets = {
        name: build_dataset(name, scale=0.05, seed=index)
        for index, name in enumerate(["system_c", "system_a"])
    }
    sources = {"system_c": source_training_slice(datasets["system_c"].sequences, 1200)}
    split = continuous_target_split(datasets["system_a"].sequences, 150)

    config = LogSynergyConfig(
        d_model=32, num_heads=4, num_layers=2, d_ff=64, feature_dim=16,
        embedding_dim=64, epochs=8, batch_size=64, learning_rate=3e-4,
    )
    model = LogSynergy(config)
    model.fit(sources, "system_a", split.train)

    target_featurizer = model._featurizer("system_a")
    source_featurizer = model._featurizer("system_c")
    source_train = sources["system_c"]
    source_embedded = source_featurizer.embed_sequences(source_train)

    # 2. A normal target window and its nearest source training windows.
    normal_windows = [s for s in split.test[:400] if s.label == 0]
    query = normal_windows[0]
    query_embedded = target_featurizer.embed_sequences([query])[0]
    neighbours = nearest_training_sequences(
        model.model, query_embedded, source_embedded, k=3
    )
    print("\n== Nearest System C training windows to a normal System A window ==")
    for index, similarity in neighbours:
        label = "ANOMALOUS" if source_train[index].label else "normal"
        print(f"  train window #{index} ({label}), unified-feature cosine {similarity:.3f}")

    # 3. Raw vs LEI similarity to the nearest anomalous source window.
    anomalous_ids = [i for i, s in enumerate(source_train) if s.label == 1]
    if anomalous_ids:
        encoder = load_pretrained_encoder(64)
        nearest_anomalous = source_train[anomalous_ids[0]]

        def mean_vec(texts):
            return encoder.encode_batch(texts).mean(axis=0)

        raw_sim = float(
            mean_vec(query.messages) @ mean_vec(nearest_anomalous.messages)
        )
        lei_query = [
            target_featurizer.interpretation_of(target_featurizer.event_id_of(m))
            for m in query.messages
        ]
        lei_anomalous = [
            source_featurizer.interpretation_of(source_featurizer.event_id_of(m))
            for m in nearest_anomalous.messages
        ]
        lei_sim = float(mean_vec(lei_query) @ mean_vec(lei_anomalous))
        print("\n== Raw-text vs interpretation similarity "
              "(normal A window vs anomalous C window) ==")
        print(f"  raw log text : {raw_sim:.3f}")
        print(f"  LEI          : {lei_sim:.3f}")
        print("  (lower LEI similarity = the false-positive trap removed)")

    # 4. Occlusion explanation of the highest-scoring test window.
    test = split.test[:400]
    scores = model.predict_proba(test)
    hottest = int(np.argmax(scores))
    window = test[hottest]
    embedded = target_featurizer.embed_sequences([window])[0]
    interpretations = [
        target_featurizer.interpretation_of(target_featurizer.event_id_of(m))
        for m in window.messages
    ]
    explanation = explain_window(
        model.model, embedded, window.messages, interpretations,
        training_windows=source_embedded, k_neighbours=2,
    )
    print(f"\n== Occlusion explanation of the hottest test window "
          f"(true label: {'anomalous' if window.label else 'normal'}) ==")
    print(explanation.render())


if __name__ == "__main__":
    main()
