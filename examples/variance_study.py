"""Multi-seed variance study: how stable are the headline numbers?

Single-seed results at reduced scale carry real variance; before trusting
a comparison, measure the spread.  This example repeats the thunderbird
transfer experiment across seeds for LogSynergy and one baseline and
reports mean +/- std — the quoting style downstream users should adopt.

Run:  python examples/variance_study.py            (3 seeds, ~2 min)
      python examples/variance_study.py --seeds 5
"""

import sys

from repro import LogSynergyConfig
from repro.evaluation import repeat_experiment

CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=2, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=10, batch_size=64, learning_rate=5e-4,
)


def main() -> None:
    n_seeds = 3
    if "--seeds" in sys.argv:
        n_seeds = int(sys.argv[sys.argv.index("--seeds") + 1])
    seeds = list(range(n_seeds))
    print(f"Repeating target=thunderbird (sources: bgl, spirit) over seeds {seeds}\n")

    logsynergy = repeat_experiment(
        "thunderbird", ["bgl", "spirit"], method="LogSynergy", seeds=seeds,
        scale=0.005, n_source=800, n_target=100, max_test=600, config=CONFIG,
    )
    print(" ", logsynergy.summary())

    deeplog = repeat_experiment(
        "thunderbird", ["bgl", "spirit"], method="DeepLog", seeds=seeds,
        scale=0.005, n_source=800, n_target=100, max_test=600,
        baseline_kwargs=dict(epochs=3, hidden_size=32, num_layers=1),
    )
    print(" ", deeplog.summary())

    gap = 100 * (logsynergy.f1_mean - deeplog.f1_mean)
    spread = 100 * (logsynergy.f1_std + deeplog.f1_std)
    print(f"\nF1 gap: {gap:.1f} points (combined std {spread:.1f}) — "
          f"{'robust' if gap > spread else 'within noise'} at this scale")


if __name__ == "__main__":
    main()
