"""LEI walkthrough: how LLM interpretation bridges log-syntax dialects.

Reproduces the paper's Table I / Fig 2 narrative end-to-end:

 1. the same anomalous events rendered in six incompatible system dialects,
 2. Drain recovering each system's templates,
 3. the (simulated) LLM rewriting every template into one canonical
    sentence per event concept,
 4. the measurable effect: cross-system cosine similarity of event
    embeddings before vs after interpretation,
 5. the operator review loop catching hallucinated interpretations.

Run:  python examples/llm_interpretation_demo.py
"""

import numpy as np

from repro.embedding import load_pretrained_encoder
from repro.llm import EventInterpreter, SimulatedLLM, build_interpretation_prompt
from repro.logs import concept_by_name, generate_logs
from repro.parsing import TemplateStore


def show_dialects() -> None:
    print("== 1. One anomaly, six dialects (the Table I phenomenon) ==")
    concept = concept_by_name("network_interruption")
    for system, phrase in concept.phrases.items():
        print(f"  {system:12s} {phrase}")
    print(f"\n  shared semantics: {concept.canonical}\n")


def interpret_templates() -> None:
    print("== 2-3. Drain templates and their LLM interpretations ==")
    llm = SimulatedLLM()
    interpreter = EventInterpreter(llm)
    for system in ("spirit", "system_c"):
        store = TemplateStore()
        for record in generate_logs(system, 1500, seed=3):
            store.ingest(record.message)
        report = interpreter.interpret_store(system, store)
        print(f"\n  {system}: {len(report)} events, {report.llm_calls} LLM calls, "
              f"{report.regenerated} regenerated")
        for event_id in store.event_ids[:4]:
            template, _ = store.inventory()[event_id]
            print(f"    {template[:52]:52s} -> {report.interpretations[event_id][:58]}")


def measure_alignment() -> None:
    print("\n== 4. Embedding-space effect of LEI ==")
    encoder = load_pretrained_encoder(64)
    llm = SimulatedLLM()
    concept = concept_by_name("parity_error")
    systems = list(concept.phrases)
    raw_vectors, lei_vectors = [], []
    for system in systems:
        rendered = concept.phrases[system].replace("<*>", "17")
        raw_vectors.append(encoder.encode(rendered))
        interpretation = llm.complete(build_interpretation_prompt(system, rendered))
        lei_vectors.append(encoder.encode(interpretation))

    def mean_pairwise(vectors):
        sims = [
            float(a @ b)
            for i, a in enumerate(vectors) for b in vectors[i + 1:]
        ]
        return np.mean(sims)

    print(f"  'parity_error' across {len(systems)} systems:")
    print(f"    raw-template cosine similarity : {mean_pairwise(raw_vectors):.3f}")
    print(f"    LEI-interpreted similarity     : {mean_pairwise(lei_vectors):.3f}")


def review_loop() -> None:
    print("\n== 5. Operator review loop vs hallucination ==")

    class Flaky:
        """An LLM that hallucinates an unusable answer on its first try."""

        def __init__(self):
            self.calls = 0

        def complete(self, prompt: str) -> str:
            self.calls += 1
            if self.calls == 1:
                return "event <*> did a thing\nmaybe"  # fails format review
            return "A cooling fan failed and node temperature is rising."

    flaky = Flaky()
    interpreter = EventInterpreter(flaky, max_regenerations=2)
    text, regenerations = interpreter.interpret_event(
        "bgl", "MMCS: fan module 3 RPM below minimum, temperature ascending"
    )
    print(f"  accepted after {regenerations} regeneration(s): {text}")


def main() -> None:
    show_dialects()
    interpret_templates()
    measure_alignment()
    review_loop()


if __name__ == "__main__":
    main()
