"""Quickstart: train LogSynergy for a new system in ~30 seconds.

Scenario: ``thunderbird`` is a freshly deployed system with only 100
labeled log sequences; ``bgl`` and ``spirit`` are mature systems with
plenty of labeled history.  We transfer their anomaly-detection knowledge
to the new system and evaluate on its unlabeled tail.

Run:  python examples/quickstart.py
"""

from repro import LogSynergy, LogSynergyConfig
from repro.evaluation import binary_metrics, continuous_target_split, source_training_slice
from repro.logs import build_dataset


def main() -> None:
    # 1. Data: two mature source systems, one new target system.
    #    (Synthetic stand-ins for the paper's datasets; swap in your own
    #    LogRecord streams via repro.logs.loader.)
    print("Generating datasets ...")
    datasets = {
        name: build_dataset(name, scale=0.006, seed=index)
        for index, name in enumerate(["bgl", "spirit", "thunderbird"])
    }
    for dataset in datasets.values():
        print(f"  {dataset.display_name:12s} {dataset.num_sequences:5d} sequences, "
              f"{dataset.num_anomalies:4d} anomalous ({dataset.anomaly_ratio:.2%})")

    # 2. Splits: mature systems contribute labeled history; the new system
    #    contributes only its earliest 100 labeled sequences (continuous
    #    sampling - no data leakage).
    sources = {
        name: source_training_slice(datasets[name].sequences, 1000)
        for name in ("bgl", "spirit")
    }
    split = continuous_target_split(datasets["thunderbird"].sequences, 100)

    # 3. Train: Drain parsing -> LLM event interpretation (simulated) ->
    #    event embeddings -> Transformer + SUFE + DAAN, all inside fit().
    config = LogSynergyConfig(
        d_model=32, num_heads=4, num_layers=2, d_ff=64, feature_dim=16,
        embedding_dim=64, epochs=12, batch_size=64, learning_rate=5e-4,
    )
    print("\nTraining LogSynergy (sources: BGL, Spirit -> target: Thunderbird) ...")
    model = LogSynergy(config)
    model.fit(sources, "thunderbird", split.train, verbose=True)

    # 4. Detect anomalies on the new system's unseen tail.
    test = split.test[:800]
    predictions = model.predict(test)
    metrics = binary_metrics([s.label for s in test], predictions)
    print("\nTarget-system test performance:")
    for key, value in metrics.as_percentages().items():
        print(f"  {key:6s} {value:6.2f}")

    # 5. Inspect one flagged window as an operator would.
    flagged = [seq for seq, pred in zip(test, predictions) if pred == 1]
    if flagged:
        report = model.detect_stream(
            flagged[0].messages,
            timestamps=[r.timestamp for r in flagged[0].records],
        )
        print("\nExample anomaly report:")
        print(report.render())


if __name__ == "__main__":
    main()
